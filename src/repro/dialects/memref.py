"""``memref`` dialect: memory allocation and access operations."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import (
    DenseElementsAttr,
    Dialect,
    IndexType,
    MemoryEffect,
    MemoryEffectsInterface,
    MemRefType,
    Operation,
    StringAttr,
    Trait,
    Value,
    register_op,
)
from ..ir.interfaces import allocate, free, read, write


@register_op
class AllocaOp(Operation, MemoryEffectsInterface):
    """Stack-like allocation (private memory on the device side)."""

    OPERATION_NAME = "memref.alloca"

    @classmethod
    def build(cls, memref_type: MemRefType) -> "AllocaOp":
        return cls(operands=(), result_types=(memref_type,))

    def memory_effects(self) -> List[MemoryEffect]:
        return [allocate(self.results[0])]


@register_op
class AllocOp(Operation, MemoryEffectsInterface):
    """Heap-like allocation; used for SYCL local-memory tiles."""

    OPERATION_NAME = "memref.alloc"

    @classmethod
    def build(cls, memref_type: MemRefType) -> "AllocOp":
        return cls(operands=(), result_types=(memref_type,))

    def memory_effects(self) -> List[MemoryEffect]:
        return [allocate(self.results[0])]


@register_op
class DeallocOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "memref.dealloc"

    @classmethod
    def build(cls, memref: Value) -> "DeallocOp":
        return cls(operands=(memref,))

    def memory_effects(self) -> List[MemoryEffect]:
        return [free(self.operands[0])]


@register_op
class LoadOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "memref.load"

    @classmethod
    def build(cls, memref: Value, indices: Sequence[Value] = ()) -> "LoadOp":
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError(f"memref.load expects a memref, got {memref_type}")
        return cls(operands=(memref, *indices),
                   result_types=(memref_type.element_type,))

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[1:]

    def memory_effects(self) -> List[MemoryEffect]:
        return [read(self.memref)]


@register_op
class StoreOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "memref.store"

    @classmethod
    def build(cls, value: Value, memref: Value,
              indices: Sequence[Value] = ()) -> "StoreOp":
        return cls(operands=(value, memref, *indices))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def memref(self) -> Value:
        return self.operands[1]

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[2:]

    def memory_effects(self) -> List[MemoryEffect]:
        return [write(self.memref)]


@register_op
class DimOp(Operation):
    """Query the size of a memref dimension."""

    OPERATION_NAME = "memref.dim"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, memref: Value, dim: Value) -> "DimOp":
        return cls(operands=(memref, dim), result_types=(IndexType(),))


@register_op
class CastOp(Operation):
    OPERATION_NAME = "memref.cast"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, memref: Value, result_type: MemRefType) -> "CastOp":
        return cls(operands=(memref,), result_types=(result_type,))


@register_op
class GlobalOp(Operation):
    """Module-level constant array (e.g. a convolution filter)."""

    OPERATION_NAME = "memref.global"
    TRAITS = frozenset({Trait.SYMBOL})

    @classmethod
    def build(cls, name: str, memref_type: MemRefType,
              initial_value: Optional[DenseElementsAttr] = None,
              constant: bool = True) -> "GlobalOp":
        attrs = {
            "sym_name": StringAttr(name),
            "type": StringAttr(str(memref_type)),
        }
        if initial_value is not None:
            attrs["initial_value"] = initial_value
        if constant:
            from ..ir import UnitAttr

            attrs["constant"] = UnitAttr()
        op = cls(operands=(), result_types=(), attributes=attrs)
        op.memref_type = memref_type
        return op


@register_op
class GetGlobalOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "memref.get_global"

    @classmethod
    def build(cls, name: str, memref_type: MemRefType) -> "GetGlobalOp":
        return cls(operands=(), result_types=(memref_type,),
                   attributes={"name": StringAttr(name)})

    def memory_effects(self) -> List[MemoryEffect]:
        # Getting the address of a global has no effect by itself.
        return []


@register_op
class CopyOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "memref.copy"

    @classmethod
    def build(cls, source: Value, target: Value) -> "CopyOp":
        return cls(operands=(source, target))

    def memory_effects(self) -> List[MemoryEffect]:
        return [read(self.operands[0]), write(self.operands[1])]


class MemRefDialect(Dialect):
    NAME = "memref"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp)
# ---------------------------------------------------------------------------

from ..interp.memory import MemRefStorage, TrapError  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


def _eval_alloc(ctx, op, args):
    memref_type = op.results[0].type
    if memref_type.memory_space == "local":
        # Work-group local tiles are shared by every item of the group
        # (the Loop Internalization contract).
        return [ctx.local_storage_for(op, memref_type)]
    return [MemRefStorage.for_type(memref_type)]


register_evaluator("memref.alloca", _eval_alloc)
register_evaluator("memref.alloc", _eval_alloc)


@register_evaluator("memref.dealloc")
def _eval_dealloc(ctx, op, args):
    return []


@register_evaluator("memref.load")
def _eval_load(ctx, op, args):
    target = args[0]
    ctx.counters.count_load(target.element_bytes)
    return [target.load(args[1:])]


@register_evaluator("memref.store")
def _eval_store(ctx, op, args):
    target = args[1]
    ctx.counters.count_store(target.element_bytes)
    target.store(args[2:], args[0])
    return []


@register_evaluator("memref.dim")
def _eval_dim(ctx, op, args):
    storage = args[0]
    dim = int(args[1])
    shape = getattr(storage, "shape", None)
    if shape is None or not 0 <= dim < len(shape):
        raise TrapError(f"memref.dim {dim} out of range")
    return [int(shape[dim])]


@register_evaluator("memref.cast")
def _eval_cast(ctx, op, args):
    return [args[0]]


@register_evaluator("memref.get_global")
def _eval_get_global(ctx, op, args):
    name = op.get_str_attr("name", "")
    return [ctx.interpreter.global_storage(name)]


@register_evaluator("memref.copy")
def _eval_copy(ctx, op, args):
    source, target = args
    if source.size != target.size:
        raise TrapError("memref.copy between different element counts")
    src_flat = getattr(source, "_flat", None)
    dst_flat = getattr(target, "_flat", None)
    if src_flat is not None and dst_flat is not None:
        dst_flat[:] = src_flat  # bulk NumPy copy on the common path
    else:
        for i in range(source.size):
            target.store_flat(i, source.load_flat(i))
    # Bulk-adjust both counter families so copy-heavy IR reports the
    # same loads/stores-to-bytes ratio as element-wise accesses.
    ctx.counters.loads += source.size
    ctx.counters.stores += target.size
    ctx.counters.bytes_read += source.size * source.element_bytes
    ctx.counters.bytes_written += target.size * target.element_bytes
    return []
