"""``func`` dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir import (
    Block,
    CallOpInterface,
    Dialect,
    FunctionType,
    Operation,
    StringAttr,
    SymbolRefAttr,
    Trait,
    Type,
    TypeAttr,
    Value,
    register_op,
)


@register_op
class FuncOp(Operation):
    """A function definition with a single-region body.

    Attributes of note used throughout the project:

    * ``sym_name``: the function's symbol name;
    * ``sycl.kernel``: marks SYCL kernel entry points (device side);
    * ``sycl.kernel_name``: the user-facing kernel name.
    """

    OPERATION_NAME = "func.func"
    # No SINGLE_BLOCK: after convert-scf-to-cf a function body is a
    # multi-block CFG (entry block first, branch terminators between
    # blocks); structured bodies simply never grow a second block.
    TRAITS = frozenset({Trait.SYMBOL, Trait.ISOLATED_FROM_ABOVE})

    @classmethod
    def build(cls, name: str, arg_types: Sequence[Type],
              result_types: Sequence[Type] = (),
              arg_names: Optional[Sequence[str]] = None,
              visibility: str = "public") -> "FuncOp":
        func_type = FunctionType(tuple(arg_types), tuple(result_types))
        op = cls(
            operands=(),
            result_types=(),
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(func_type),
                "sym_visibility": StringAttr(visibility),
            },
            regions=1,
        )
        entry = Block(arg_types, arg_names)
        op.regions[0].add_block(entry)
        return op

    # -- accessors -----------------------------------------------------------
    @property
    def sym_name(self) -> str:
        return self.get_str_attr("sym_name", "")

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, TypeAttr) and isinstance(attr.value, FunctionType)
        return attr.value

    @property
    def body(self) -> Block:
        return self.regions[0].front

    @property
    def entry_block(self) -> Block:
        return self.body

    @property
    def arguments(self):
        return self.body.arguments

    @property
    def is_declaration(self) -> bool:
        return self.regions[0].empty or self.body.first_op is None

    def is_kernel(self) -> bool:
        return "sycl.kernel" in self.attributes

    def set_function_type(self, arg_types: Sequence[Type],
                          result_types: Sequence[Type]) -> None:
        self.set_attr("function_type", TypeAttr(
            FunctionType(tuple(arg_types), tuple(result_types))))

    def erase_argument(self, index: int) -> None:
        """Remove argument ``index`` from the signature and entry block."""
        self.body.erase_argument(index)
        ftype = self.function_type
        new_inputs = tuple(t for i, t in enumerate(ftype.inputs) if i != index)
        self.set_attr("function_type", TypeAttr(
            FunctionType(new_inputs, ftype.results)))


@register_op
class ReturnOp(Operation):
    OPERATION_NAME = "func.return"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "ReturnOp":
        return cls(operands=tuple(values))


@register_op
class CallOp(Operation, CallOpInterface):
    """Direct call to a function symbol."""

    OPERATION_NAME = "func.call"

    @classmethod
    def build(cls, callee: str, args: Sequence[Value],
              result_types: Sequence[Type] = ()) -> "CallOp":
        return cls(
            operands=tuple(args),
            result_types=tuple(result_types),
            attributes={"callee": SymbolRefAttr(callee)},
        )

    def callee_name(self) -> Optional[str]:
        attr = self.attributes.get("callee")
        return attr.leaf if isinstance(attr, SymbolRefAttr) else None

    def call_arguments(self) -> Sequence[Value]:
        return self.operands


class FuncDialect(Dialect):
    NAME = "func"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp)
# ---------------------------------------------------------------------------

from ..interp.memory import BlockResult, InterpreterError  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("func.return")
def _eval_return(ctx, op, args):
    return BlockResult("return", tuple(args))


@register_evaluator("func.call")
def _eval_call(ctx, op, args):
    callee = op.callee_name()
    if callee is None:
        raise InterpreterError("func.call without a callee symbol")
    results = yield from ctx.call(callee, args)
    if len(results) != len(op.results):
        raise InterpreterError(
            f"call to '{callee}' returned {len(results)} values, "
            f"call site expects {len(op.results)}")
    return results
