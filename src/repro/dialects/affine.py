"""``affine`` dialect: loops and memory accesses with affine index semantics.

The affine dialect is where the paper's loop optimizations live: Detect
Reduction operates on ``affine.for`` + ``affine.load``/``affine.store``
(Listings 4-5), and Loop Internalization tiles ``affine.for`` nests
(Listings 6-7).  The memory access analysis (Section V-D) derives access
matrices from affine index expressions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import (
    Block,
    Dialect,
    IndexType,
    IntegerAttr,
    LoopLikeInterface,
    int_array_attr,
    int_array_values,
    MemoryEffect,
    MemoryEffectsInterface,
    MemRefType,
    Operation,
    Trait,
    Value,
    i64,
    register_op,
)
from ..ir.interfaces import read, write
from .arith import constant_value_of


@register_op
class AffineYieldOp(Operation):
    OPERATION_NAME = "affine.yield"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "AffineYieldOp":
        return cls(operands=tuple(values))


@register_op
class AffineForOp(Operation, LoopLikeInterface):
    """Counted loop with affine semantics.

    Lower and upper bounds are index SSA values (typically constants), the
    step is a positive integer attribute, and the body may carry loop-carried
    values through ``iter_args`` exactly like ``scf.for``.
    """

    OPERATION_NAME = "affine.for"
    TRAITS = frozenset({Trait.SINGLE_BLOCK, Trait.LOOP_LIKE})

    @classmethod
    def build(cls, lower: Value, upper: Value, step: int = 1,
              iter_args: Sequence[Value] = ()) -> "AffineForOp":
        result_types = tuple(v.type for v in iter_args)
        op = cls(operands=(lower, upper, *iter_args),
                 result_types=result_types,
                 attributes={"step": IntegerAttr(int(step), i64())},
                 regions=1)
        body = Block([IndexType(), *[v.type for v in iter_args]],
                     ["iv"] + [f"iter{i}" for i in range(len(iter_args))])
        op.regions[0].add_block(body)
        return op

    # -- accessors -----------------------------------------------------------
    @property
    def lower_bound(self) -> Value:
        return self.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> int:
        return self.get_int_attr("step", 1)

    @property
    def init_args(self) -> Sequence[Value]:
        return self.operands[2:]

    @property
    def body(self) -> Block:
        return self.regions[0].front

    def induction_variable(self) -> Value:
        return self.body.arguments[0]

    @property
    def region_iter_args(self) -> Sequence[Value]:
        return self.body.arguments[1:]

    def loop_body(self) -> Block:
        return self.body

    def loop_bounds(self):
        return (self.lower_bound, self.upper_bound, self.step)

    def constant_bounds(self) -> Optional[tuple]:
        lb = constant_value_of(self.lower_bound)
        ub = constant_value_of(self.upper_bound)
        if lb is None or ub is None:
            return None
        return (int(lb), int(ub), self.step)

    def constant_trip_count(self) -> Optional[int]:
        bounds = self.constant_bounds()
        if bounds is None:
            return None
        lb, ub, step = bounds
        if step <= 0:
            return None
        return max(0, -(-(ub - lb) // step))

    def yielded_values(self) -> Sequence[Value]:
        terminator = self.body.terminator
        return terminator.operands if terminator is not None else ()


@register_op
class AffineLoadOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "affine.load"

    @classmethod
    def build(cls, memref: Value, indices: Sequence[Value] = ()) -> "AffineLoadOp":
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError(f"affine.load expects a memref, got {memref_type}")
        return cls(operands=(memref, *indices),
                   result_types=(memref_type.element_type,))

    @property
    def memref(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[1:]

    def memory_effects(self) -> List[MemoryEffect]:
        return [read(self.memref)]


@register_op
class AffineStoreOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "affine.store"

    @classmethod
    def build(cls, value: Value, memref: Value,
              indices: Sequence[Value] = ()) -> "AffineStoreOp":
        return cls(operands=(value, memref, *indices))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def memref(self) -> Value:
        return self.operands[1]

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[2:]

    def memory_effects(self) -> List[MemoryEffect]:
        return [write(self.memref)]


@register_op
class AffineApplyOp(Operation):
    """Applies an affine expression ``sum(coeff_i * operand_i) + constant``."""

    OPERATION_NAME = "affine.apply"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, coefficients: Sequence[int], operands: Sequence[Value],
              constant: int = 0) -> "AffineApplyOp":
        if len(coefficients) != len(operands):
            raise ValueError("coefficient / operand count mismatch")
        # Coefficients are a real attribute so the op prints, parses and
        # CSEs with its full semantics.
        return cls(operands=tuple(operands), result_types=(IndexType(),),
                   attributes={"constant": IntegerAttr(int(constant), i64()),
                               "coefficients": int_array_attr(
                                   coefficients, i64())})

    @property
    def coefficients(self) -> List[int]:
        return int_array_values(self.attributes.get("coefficients"))

    def fold(self):
        coefficients = self.coefficients
        if len(coefficients) != len(self.operands):
            return None  # malformed (e.g. hand-written IR); don't guess
        values = [constant_value_of(v) for v in self.operands]
        if any(v is None for v in values):
            return None
        total = self.get_int_attr("constant", 0)
        for coeff, value in zip(coefficients, values):
            total += coeff * int(value)
        return [IntegerAttr(total, i64())]


@register_op
class AffineMinOp(Operation):
    """Minimum of its operands (used for tiling boundary handling)."""

    OPERATION_NAME = "affine.min"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, operands: Sequence[Value]) -> "AffineMinOp":
        return cls(operands=tuple(operands), result_types=(IndexType(),))

    def fold(self):
        values = [constant_value_of(v) for v in self.operands]
        if any(v is None for v in values):
            return None
        return [IntegerAttr(min(int(v) for v in values), i64())]


def is_affine_access(op: Operation) -> bool:
    return isinstance(op, (AffineLoadOp, AffineStoreOp))


def enclosing_affine_loops(op: Operation) -> List[AffineForOp]:
    """Affine loops enclosing ``op``, outermost first."""
    loops: List[AffineForOp] = []
    parent = op.parent_op()
    while parent is not None:
        if isinstance(parent, AffineForOp):
            loops.append(parent)
        parent = parent.parent_op()
    loops.reverse()
    return loops


def is_perfectly_nested(outer: AffineForOp, inner: AffineForOp) -> bool:
    """True if ``inner`` is the only non-terminator operation in ``outer``."""
    body_ops = outer.body.ops_without_terminator()
    return len(body_ops) == 1 and body_ops[0] is inner


class AffineDialect(Dialect):
    NAME = "affine"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp)
# ---------------------------------------------------------------------------

from ..interp.memory import BlockResult, TrapError  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("affine.yield")
def _eval_affine_yield(ctx, op, args):
    return BlockResult("yield", tuple(args))


@register_evaluator("affine.for")
def _eval_affine_for(ctx, op, args):
    lower, upper = int(args[0]), int(args[1])
    step = op.step
    if step <= 0:
        raise TrapError(f"affine.for with non-positive step {step}")
    carried = list(args[2:])
    body = op.body
    for iv in range(lower, upper, step):
        outcome = yield from ctx.exec_block(body, [iv, *carried])
        if outcome.kind == "yield":
            carried = list(outcome.values)
    return carried


@register_evaluator("affine.apply")
def _eval_affine_apply(ctx, op, args):
    coefficients = op.coefficients
    if len(coefficients) != len(args):
        raise TrapError("affine.apply coefficient / operand count mismatch")
    total = op.get_int_attr("constant", 0)
    for coefficient, value in zip(coefficients, args):
        total += coefficient * int(value)
    return [total]


@register_evaluator("affine.min")
def _eval_affine_min(ctx, op, args):
    if not args:
        raise TrapError("affine.min with no operands")
    return [min(int(v) for v in args)]


@register_evaluator("affine.load")
def _eval_affine_load(ctx, op, args):
    target = args[0]
    ctx.counters.count_load(target.element_bytes)
    return [target.load(args[1:])]


@register_evaluator("affine.store")
def _eval_affine_store(ctx, op, args):
    target = args[1]
    ctx.counters.count_store(target.element_bytes)
    target.store(args[2:], args[0])
    return []
