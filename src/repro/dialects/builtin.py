"""Builtin dialect: the top-level module operation."""

from __future__ import annotations

from typing import Iterator, Optional

from ..ir import (
    Block,
    Dialect,
    Operation,
    StringAttr,
    Trait,
    register_op,
)


@register_op
class ModuleOp(Operation):
    """Top-level container for functions and nested modules.

    Following the paper's compilation flow (Section IV), a combined module
    holds the host functions at the top level and the device kernels inside
    a nested ``builtin.module`` named ``kernels`` (a GPU-module analogue),
    so host and device code can be analyzed side by side.
    """

    OPERATION_NAME = "builtin.module"
    TRAITS = frozenset({Trait.SYMBOL_TABLE, Trait.SINGLE_BLOCK,
                        Trait.ISOLATED_FROM_ABOVE})

    @classmethod
    def build(cls, name: Optional[str] = None) -> "ModuleOp":
        attrs = {}
        if name is not None:
            attrs["sym_name"] = StringAttr(name)
        op = cls(operands=(), result_types=(), attributes=attrs, regions=1)
        op.regions[0].add_block(Block())
        return op

    @property
    def body(self) -> Block:
        return self.regions[0].front

    @property
    def sym_name(self) -> Optional[str]:
        return self.get_str_attr("sym_name")

    def append(self, op: Operation) -> Operation:
        return self.body.append(op)

    def functions(self) -> Iterator[Operation]:
        """Yield all function-like symbol operations directly in this module."""
        from .func import FuncOp
        from .llvm import LLVMFuncOp

        for op in self.body.operations:
            if isinstance(op, (FuncOp, LLVMFuncOp)):
                yield op

    def submodules(self) -> Iterator["ModuleOp"]:
        for op in self.body.operations:
            if isinstance(op, ModuleOp):
                yield op

    def lookup_symbol(self, name: str) -> Optional[Operation]:
        """Find a symbol operation by name in this module or submodules."""
        for op in self.body.operations:
            sym = op.get_str_attr("sym_name")
            if sym == name:
                return op
        for sub in self.submodules():
            found = sub.lookup_symbol(name)
            if found is not None:
                return found
        return None


@register_op
class UnrealizedConversionCastOp(Operation):
    """Value-identity cast between types during progressive lowering."""

    OPERATION_NAME = "builtin.unrealized_conversion_cast"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value, result_type) -> "UnrealizedConversionCastOp":
        return cls(operands=(value,), result_types=(result_type,))


class BuiltinDialect(Dialect):
    NAME = "builtin"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp)
# ---------------------------------------------------------------------------

from ..interp.memory import InterpreterError  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("builtin.unrealized_conversion_cast")
def _eval_unrealized_cast(ctx, op, args):
    return [args[0]]


@register_evaluator("builtin.module")
def _eval_module(ctx, op, args):
    raise InterpreterError(
        "builtin.module is a container, not an executable operation; "
        "use Interpreter.call(<function name>) instead")
