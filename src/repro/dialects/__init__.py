"""Dialect definitions used by the SYCL-MLIR reproduction.

Besides the dialect descriptors, this module hosts the **dialect type
parser registry** used by :mod:`repro.ir.parser` to resolve ``!``-prefixed
types (``!sycl_id_2``, ``!llvm.ptr<i32>``, ...).  Each dialect registers a
parser callable ``(text, parse_type) -> Optional[Type]`` where ``text`` is
the full raw spelling after ``!`` (identifier characters plus balanced
``<...>`` groups, e.g. ``"sycl_buffer_1_memref<4xf32>"`` or
``"llvm.ptr<i32>"``) and ``parse_type`` parses a nested type from a
string.  Returning None lets the IR parser report a helpful error.
"""

from typing import Callable, Dict, Optional

from ..ir.types import Type

from . import affine, arith, builtin, cf, func, llvm, math, memref, scf, sycl
from .affine import AffineDialect
from .arith import ArithDialect
from .builtin import BuiltinDialect, ModuleOp
from .cf import CFDialect
from .func import FuncDialect, FuncOp
from .llvm import LLVMDialect
from .math import MathDialect
from .memref import MemRefDialect
from .scf import SCFDialect
from .sycl import SYCLDialect

#: ``(text, parse_type) -> Optional[Type]`` — returns None when the
#: dialect does not recognize the type, letting the parser report an error.
TypeParser = Callable[[str, Callable[[str], Type]], Optional[Type]]

_TYPE_PARSERS: Dict[str, TypeParser] = {}


def register_type_parser(dialect_name: str, parser: TypeParser) -> None:
    """Register ``parser`` for ``!``-types of dialect ``dialect_name``."""
    _TYPE_PARSERS[dialect_name] = parser


def lookup_type_parser(dialect_name: str) -> Optional[TypeParser]:
    return _TYPE_PARSERS.get(dialect_name)


def registered_type_parsers() -> Dict[str, TypeParser]:
    return dict(_TYPE_PARSERS)


register_type_parser("sycl", sycl.parse_sycl_type)
register_type_parser("llvm", llvm.parse_llvm_type)


def all_dialects():
    """Instantiate every dialect shipped with the project."""
    return [
        BuiltinDialect(),
        FuncDialect(),
        ArithDialect(),
        MathDialect(),
        MemRefDialect(),
        SCFDialect(),
        AffineDialect(),
        CFDialect(),
        LLVMDialect(),
        SYCLDialect(),
    ]


__all__ = [
    "affine", "arith", "builtin", "cf", "func", "llvm", "math", "memref",
    "scf", "sycl", "AffineDialect", "ArithDialect", "BuiltinDialect",
    "CFDialect", "FuncDialect",
    "LLVMDialect", "MathDialect", "MemRefDialect", "SCFDialect",
    "SYCLDialect", "ModuleOp", "FuncOp", "all_dialects",
    "TypeParser", "register_type_parser", "lookup_type_parser",
    "registered_type_parsers",
]
