"""Dialect definitions used by the SYCL-MLIR reproduction."""

from . import affine, arith, builtin, func, llvm, math, memref, scf, sycl
from .affine import AffineDialect
from .arith import ArithDialect
from .builtin import BuiltinDialect, ModuleOp
from .func import FuncDialect, FuncOp
from .llvm import LLVMDialect
from .math import MathDialect
from .memref import MemRefDialect
from .scf import SCFDialect
from .sycl import SYCLDialect


def all_dialects():
    """Instantiate every dialect shipped with the project."""
    return [
        BuiltinDialect(),
        FuncDialect(),
        ArithDialect(),
        MathDialect(),
        MemRefDialect(),
        SCFDialect(),
        AffineDialect(),
        LLVMDialect(),
        SYCLDialect(),
    ]


__all__ = [
    "affine", "arith", "builtin", "func", "llvm", "math", "memref", "scf",
    "sycl", "AffineDialect", "ArithDialect", "BuiltinDialect", "FuncDialect",
    "LLVMDialect", "MathDialect", "MemRefDialect", "SCFDialect",
    "SYCLDialect", "ModuleOp", "FuncOp", "all_dialects",
]
