"""``arith`` dialect: integer, index and floating-point arithmetic.

All operations are pure; most implement ``fold`` so the canonicalizer and the
host-device constant propagation (paper, Section VII-B) can simplify code
once constants are known.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir import (
    Attribute,
    BoolAttr,
    Dialect,
    FloatAttr,
    FloatType,
    IndexType,
    IntegerAttr,
    IntegerType,
    Operation,
    StringAttr,
    Trait,
    Type,
    Value,
    i1,
    is_float,
    register_op,
)


def _const_value(value: Value):
    """Return the python constant behind ``value`` if it is constant-like."""
    defining = value.defining_op()
    if defining is None:
        return None
    if isinstance(defining, ConstantOp):
        return defining.value
    return None


@register_op
class ConstantOp(Operation):
    """Materializes an integer, index, float or boolean constant."""

    OPERATION_NAME = "arith.constant"
    TRAITS = frozenset({Trait.PURE, Trait.CONSTANT_LIKE})

    @classmethod
    def build(cls, value, type_: Type) -> "ConstantOp":
        if isinstance(type_, FloatType):
            attr: Attribute = FloatAttr(float(value), type_)
        elif isinstance(type_, IntegerType) and type_.width == 1:
            attr = BoolAttr(bool(value))
        else:
            attr = IntegerAttr(int(value), type_)
        return cls(operands=(), result_types=(type_,), attributes={"value": attr})

    @property
    def value(self):
        attr = self.attributes["value"]
        if isinstance(attr, (IntegerAttr, FloatAttr)):
            return attr.value
        if isinstance(attr, BoolAttr):
            return attr.value
        raise TypeError(f"unexpected constant attribute {attr!r}")

    def fold(self):
        return [self.attributes["value"]]


class _BinaryOp(Operation):
    """Shared implementation for binary element-wise arithmetic."""

    TRAITS = frozenset({Trait.PURE})
    PY_FUNC = None

    @classmethod
    def build(cls, lhs: Value, rhs: Value,
              result_type: Optional[Type] = None) -> "_BinaryOp":
        return cls(operands=(lhs, rhs),
                   result_types=(result_type or lhs.type,))

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def _compute(self, a, b):
        raise NotImplementedError

    def fold(self):
        a = _const_value(self.operands[0])
        b = _const_value(self.operands[1])
        if a is None or b is None:
            return None
        try:
            result = self._compute(a, b)
        except ZeroDivisionError:
            return None
        type_ = self.results[0].type
        if is_float(type_):
            return [FloatAttr(float(result), type_)]
        return [IntegerAttr(int(result), type_)]


def _int_binop(name: str, func, commutative: bool = False,
               identity: Optional[int] = None):
    """Factory for integer/index binary operations."""

    traits = {Trait.PURE}
    if commutative:
        traits.add(Trait.COMMUTATIVE)

    @register_op
    class _Op(_BinaryOp):
        OPERATION_NAME = name
        TRAITS = frozenset(traits)
        IDENTITY = identity

        def _compute(self, a, b):
            return func(a, b)

    _Op.__name__ = name.split(".")[-1].capitalize() + "Op"
    return _Op


def _float_binop(name: str, func, commutative: bool = False,
                 identity: Optional[float] = None):
    traits = {Trait.PURE}
    if commutative:
        traits.add(Trait.COMMUTATIVE)

    @register_op
    class _Op(_BinaryOp):
        OPERATION_NAME = name
        TRAITS = frozenset(traits)
        IDENTITY = identity

        def _compute(self, a, b):
            return func(a, b)

    _Op.__name__ = name.split(".")[-1].capitalize() + "Op"
    return _Op


def _floordiv(a, b):
    return int(a / b) if (a < 0) != (b < 0) and a % b != 0 else a // b


AddIOp = _int_binop("arith.addi", lambda a, b: a + b, commutative=True, identity=0)
SubIOp = _int_binop("arith.subi", lambda a, b: a - b)
MulIOp = _int_binop("arith.muli", lambda a, b: a * b, commutative=True, identity=1)
DivSIOp = _int_binop("arith.divsi", _floordiv)
DivUIOp = _int_binop("arith.divui", lambda a, b: a // b)
RemSIOp = _int_binop("arith.remsi", lambda a, b: math.fmod(a, b) if False else a - _floordiv(a, b) * b)
RemUIOp = _int_binop("arith.remui", lambda a, b: a % b)
AndIOp = _int_binop("arith.andi", lambda a, b: a & b, commutative=True)
OrIOp = _int_binop("arith.ori", lambda a, b: a | b, commutative=True)
XOrIOp = _int_binop("arith.xori", lambda a, b: a ^ b, commutative=True)
ShLIOp = _int_binop("arith.shli", lambda a, b: a << b)
ShRSIOp = _int_binop("arith.shrsi", lambda a, b: a >> b)
MinSIOp = _int_binop("arith.minsi", min, commutative=True)
MaxSIOp = _int_binop("arith.maxsi", max, commutative=True)

AddFOp = _float_binop("arith.addf", lambda a, b: a + b, commutative=True, identity=0.0)
SubFOp = _float_binop("arith.subf", lambda a, b: a - b)
MulFOp = _float_binop("arith.mulf", lambda a, b: a * b, commutative=True, identity=1.0)
DivFOp = _float_binop("arith.divf", lambda a, b: a / b)
RemFOp = _float_binop("arith.remf", math.fmod)
MinFOp = _float_binop("arith.minf", min, commutative=True)
MaxFOp = _float_binop("arith.maxf", max, commutative=True)


#: Comparison predicates follow MLIR's arith.cmpi/cmpf spelling.
_INT_PREDICATES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}

_FLOAT_PREDICATES = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "ueq": lambda a, b: a == b,
    "une": lambda a, b: a != b,
    "ult": lambda a, b: a < b,
    "ugt": lambda a, b: a > b,
}


@register_op
class CmpIOp(Operation):
    OPERATION_NAME = "arith.cmpi"
    TRAITS = frozenset({Trait.PURE})
    PREDICATES = _INT_PREDICATES

    @classmethod
    def build(cls, predicate: str, lhs: Value, rhs: Value) -> "CmpIOp":
        if predicate not in cls.PREDICATES:
            raise ValueError(f"unknown cmpi predicate {predicate!r}")
        return cls(operands=(lhs, rhs), result_types=(i1(),),
                   attributes={"predicate": StringAttr(predicate)})

    @property
    def predicate(self) -> str:
        return self.get_str_attr("predicate", "eq")

    def fold(self):
        a = _const_value(self.operands[0])
        b = _const_value(self.operands[1])
        if a is None or b is None:
            return None
        return [BoolAttr(self.PREDICATES[self.predicate](a, b))]


@register_op
class CmpFOp(CmpIOp):
    OPERATION_NAME = "arith.cmpf"
    PREDICATES = _FLOAT_PREDICATES


@register_op
class SelectOp(Operation):
    OPERATION_NAME = "arith.select"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, condition: Value, true_value: Value,
              false_value: Value) -> "SelectOp":
        return cls(operands=(condition, true_value, false_value),
                   result_types=(true_value.type,))

    def fold(self):
        cond = _const_value(self.operands[0])
        if cond is None:
            return None
        return [self.operands[1] if cond else self.operands[2]]


class _CastOp(Operation):
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "_CastOp":
        return cls(operands=(value,), result_types=(result_type,))

    def _convert(self, value):
        raise NotImplementedError

    def fold(self):
        value = _const_value(self.operands[0])
        if value is None:
            return None
        converted = self._convert(value)
        type_ = self.results[0].type
        if is_float(type_):
            return [FloatAttr(float(converted), type_)]
        if isinstance(type_, IntegerType) and type_.width == 1:
            return [BoolAttr(bool(converted))]
        return [IntegerAttr(int(converted), type_)]


@register_op
class IndexCastOp(_CastOp):
    OPERATION_NAME = "arith.index_cast"

    def _convert(self, value):
        return int(value)


@register_op
class ExtSIOp(_CastOp):
    OPERATION_NAME = "arith.extsi"

    def _convert(self, value):
        return int(value)


@register_op
class TruncIOp(_CastOp):
    OPERATION_NAME = "arith.trunci"

    def _convert(self, value):
        width = self.results[0].type.width
        return int(value) & ((1 << width) - 1)


@register_op
class SIToFPOp(_CastOp):
    OPERATION_NAME = "arith.sitofp"

    def _convert(self, value):
        return float(value)


@register_op
class FPToSIOp(_CastOp):
    OPERATION_NAME = "arith.fptosi"

    def _convert(self, value):
        return int(value)


@register_op
class ExtFOp(_CastOp):
    OPERATION_NAME = "arith.extf"

    def _convert(self, value):
        return float(value)


@register_op
class TruncFOp(_CastOp):
    OPERATION_NAME = "arith.truncf"

    def _convert(self, value):
        return float(value)


@register_op
class NegFOp(Operation):
    OPERATION_NAME = "arith.negf"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value) -> "NegFOp":
        return cls(operands=(value,), result_types=(value.type,))

    def fold(self):
        value = _const_value(self.operands[0])
        if value is None:
            return None
        return [FloatAttr(-float(value), self.results[0].type)]


def constant_int(value: int, type_: Optional[Type] = None) -> ConstantOp:
    """Convenience builder for integer constants (defaults to ``index``)."""
    return ConstantOp.build(value, type_ or IndexType())


def constant_float(value: float, type_: Optional[Type] = None) -> ConstantOp:
    return ConstantOp.build(value, type_ or FloatType(32))


def constant_bool(value: bool) -> ConstantOp:
    return ConstantOp.build(bool(value), i1())


def is_constant(value: Value) -> bool:
    return _const_value(value) is not None


def constant_value_of(value: Value):
    """Python constant behind ``value`` or None."""
    return _const_value(value)


class ArithDialect(Dialect):
    NAME = "arith"
