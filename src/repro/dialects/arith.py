"""``arith`` dialect: integer, index and floating-point arithmetic.

All operations are pure; most implement ``fold`` so the canonicalizer and the
host-device constant propagation (paper, Section VII-B) can simplify code
once constants are known.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir import (
    Attribute,
    BoolAttr,
    Dialect,
    FloatAttr,
    FloatType,
    IndexType,
    IntegerAttr,
    IntegerType,
    Operation,
    StringAttr,
    Trait,
    Type,
    Value,
    i1,
    is_float,
    register_op,
)


def _const_value(value: Value):
    """Return the python constant behind ``value`` if it is constant-like."""
    defining = value.defining_op()
    if defining is None:
        return None
    if isinstance(defining, ConstantOp):
        return defining.value
    return None


@register_op
class ConstantOp(Operation):
    """Materializes an integer, index, float or boolean constant."""

    OPERATION_NAME = "arith.constant"
    TRAITS = frozenset({Trait.PURE, Trait.CONSTANT_LIKE})

    @classmethod
    def build(cls, value, type_: Type) -> "ConstantOp":
        if isinstance(type_, FloatType):
            attr: Attribute = FloatAttr(float(value), type_)
        elif isinstance(type_, IntegerType) and type_.width == 1:
            attr = BoolAttr(bool(value))
        else:
            attr = IntegerAttr(int(value), type_)
        return cls(operands=(), result_types=(type_,), attributes={"value": attr})

    @property
    def value(self):
        attr = self.attributes["value"]
        if isinstance(attr, (IntegerAttr, FloatAttr)):
            return attr.value
        if isinstance(attr, BoolAttr):
            return attr.value
        raise TypeError(f"unexpected constant attribute {attr!r}")

    def fold(self):
        return [self.attributes["value"]]


class _BinaryOp(Operation):
    """Shared implementation for binary element-wise arithmetic."""

    TRAITS = frozenset({Trait.PURE})
    PY_FUNC = None

    @classmethod
    def build(cls, lhs: Value, rhs: Value,
              result_type: Optional[Type] = None) -> "_BinaryOp":
        return cls(operands=(lhs, rhs),
                   result_types=(result_type or lhs.type,))

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def _compute(self, a, b):
        raise NotImplementedError

    def fold(self):
        a = _const_value(self.operands[0])
        b = _const_value(self.operands[1])
        if a is None or b is None:
            return None
        if self.OPERATION_NAME in ("arith.shli", "arith.shrsi"):
            # Out-of-range shifts are poison (and a huge Python shift
            # would allocate unboundedly): leave them to trap at runtime.
            width = getattr(self.results[0].type, "width", 64)
            if not 0 <= int(b) < width:
                return None
        try:
            result = self._compute(a, b)
        except (ZeroDivisionError, ValueError, OverflowError):
            # Not foldable (division by zero, domain error): keep the op
            # so the runtime trap/IEEE semantics apply.
            return None
        type_ = self.results[0].type
        if is_float(type_):
            return [FloatAttr(float(result), type_)]
        return [IntegerAttr(int(result), type_)]


def _int_binop(name: str, func, commutative: bool = False,
               identity: Optional[int] = None, may_trap: bool = False):
    """Factory for integer/index binary operations."""

    traits = {Trait.PURE}
    if commutative:
        traits.add(Trait.COMMUTATIVE)
    if may_trap:
        traits.add(Trait.MAY_TRAP)

    @register_op
    class _Op(_BinaryOp):
        OPERATION_NAME = name
        TRAITS = frozenset(traits)
        IDENTITY = identity

        def _compute(self, a, b):
            return func(a, b)

    _Op.__name__ = name.split(".")[-1].capitalize() + "Op"
    return _Op


def _float_binop(name: str, func, commutative: bool = False,
                 identity: Optional[float] = None):
    traits = {Trait.PURE}
    if commutative:
        traits.add(Trait.COMMUTATIVE)

    @register_op
    class _Op(_BinaryOp):
        OPERATION_NAME = name
        TRAITS = frozenset(traits)
        IDENTITY = identity

        def _compute(self, a, b):
            return func(a, b)

    _Op.__name__ = name.split(".")[-1].capitalize() + "Op"
    return _Op


def _floordiv(a, b):
    return int(a / b) if (a < 0) != (b < 0) and a % b != 0 else a // b


AddIOp = _int_binop("arith.addi", lambda a, b: a + b, commutative=True, identity=0)
SubIOp = _int_binop("arith.subi", lambda a, b: a - b)
MulIOp = _int_binop("arith.muli", lambda a, b: a * b, commutative=True, identity=1)
DivSIOp = _int_binop("arith.divsi", _floordiv, may_trap=True)
DivUIOp = _int_binop("arith.divui", lambda a, b: a // b, may_trap=True)
RemSIOp = _int_binop("arith.remsi", lambda a, b: a - _floordiv(a, b) * b, may_trap=True)
RemUIOp = _int_binop("arith.remui", lambda a, b: a % b, may_trap=True)
AndIOp = _int_binop("arith.andi", lambda a, b: a & b, commutative=True)
OrIOp = _int_binop("arith.ori", lambda a, b: a | b, commutative=True)
XOrIOp = _int_binop("arith.xori", lambda a, b: a ^ b, commutative=True)
ShLIOp = _int_binop("arith.shli", lambda a, b: a << b, may_trap=True)
ShRSIOp = _int_binop("arith.shrsi", lambda a, b: a >> b, may_trap=True)
MinSIOp = _int_binop("arith.minsi", min, commutative=True)
MaxSIOp = _int_binop("arith.maxsi", max, commutative=True)

def _nan_propagating(func):
    """MLIR's minf/maxf propagate NaN regardless of operand order;
    Python's min/max return whichever operand compares 'first'."""

    def apply(a, b):
        if math.isnan(a) or math.isnan(b):
            return math.nan
        return func(a, b)

    return apply


AddFOp = _float_binop("arith.addf", lambda a, b: a + b, commutative=True, identity=0.0)
SubFOp = _float_binop("arith.subf", lambda a, b: a - b)
MulFOp = _float_binop("arith.mulf", lambda a, b: a * b, commutative=True, identity=1.0)
DivFOp = _float_binop("arith.divf", lambda a, b: a / b)
RemFOp = _float_binop("arith.remf", math.fmod)
MinFOp = _float_binop("arith.minf", _nan_propagating(min), commutative=True)
MaxFOp = _float_binop("arith.maxf", _nan_propagating(max), commutative=True)


#: Comparison predicates follow MLIR's arith.cmpi/cmpf spelling.
_INT_PREDICATES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}

def _has_nan(a, b) -> bool:
    return (isinstance(a, float) and math.isnan(a)) \
        or (isinstance(b, float) and math.isnan(b))


def _unordered(compare):
    """MLIR's u* cmpf predicates are true when either operand is NaN."""
    return lambda a, b: _has_nan(a, b) or compare(a, b)


_FLOAT_PREDICATES = {
    "oeq": lambda a, b: a == b,
    # Ordered not-equal is false on NaN; bare Python != would be true.
    "one": lambda a, b: not _has_nan(a, b) and a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "ueq": _unordered(lambda a, b: a == b),
    "une": _unordered(lambda a, b: a != b),
    "ult": _unordered(lambda a, b: a < b),
    "ule": _unordered(lambda a, b: a <= b),
    "ugt": _unordered(lambda a, b: a > b),
    "uge": _unordered(lambda a, b: a >= b),
}


@register_op
class CmpIOp(Operation):
    OPERATION_NAME = "arith.cmpi"
    TRAITS = frozenset({Trait.PURE})
    PREDICATES = _INT_PREDICATES

    @classmethod
    def build(cls, predicate: str, lhs: Value, rhs: Value) -> "CmpIOp":
        if predicate not in cls.PREDICATES:
            raise ValueError(f"unknown cmpi predicate {predicate!r}")
        return cls(operands=(lhs, rhs), result_types=(i1(),),
                   attributes={"predicate": StringAttr(predicate)})

    @property
    def predicate(self) -> str:
        return self.get_str_attr("predicate", "eq")

    def fold(self):
        a = _const_value(self.operands[0])
        b = _const_value(self.operands[1])
        if a is None or b is None:
            return None
        return [BoolAttr(self.PREDICATES[self.predicate](a, b))]


@register_op
class CmpFOp(CmpIOp):
    OPERATION_NAME = "arith.cmpf"
    PREDICATES = _FLOAT_PREDICATES


@register_op
class SelectOp(Operation):
    OPERATION_NAME = "arith.select"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, condition: Value, true_value: Value,
              false_value: Value) -> "SelectOp":
        return cls(operands=(condition, true_value, false_value),
                   result_types=(true_value.type,))

    def fold(self):
        cond = _const_value(self.operands[0])
        if cond is None:
            return None
        return [self.operands[1] if cond else self.operands[2]]


class _CastOp(Operation):
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "_CastOp":
        return cls(operands=(value,), result_types=(result_type,))

    def _convert(self, value):
        raise NotImplementedError

    def fold(self):
        value = _const_value(self.operands[0])
        if value is None:
            return None
        try:
            converted = self._convert(value)
        except (ValueError, OverflowError):
            # e.g. fptosi of NaN/inf: leave the op to trap at runtime.
            return None
        type_ = self.results[0].type
        if is_float(type_):
            return [FloatAttr(float(converted), type_)]
        if isinstance(type_, IntegerType) and type_.width == 1:
            return [BoolAttr(bool(converted))]
        return [IntegerAttr(int(converted), type_)]


@register_op
class IndexCastOp(_CastOp):
    OPERATION_NAME = "arith.index_cast"

    def _convert(self, value):
        return int(value)


@register_op
class ExtSIOp(_CastOp):
    OPERATION_NAME = "arith.extsi"

    def _convert(self, value):
        return int(value)


@register_op
class TruncIOp(_CastOp):
    OPERATION_NAME = "arith.trunci"

    def _convert(self, value):
        width = self.results[0].type.width
        return int(value) & ((1 << width) - 1)


@register_op
class SIToFPOp(_CastOp):
    OPERATION_NAME = "arith.sitofp"

    def _convert(self, value):
        return float(value)


@register_op
class FPToSIOp(_CastOp):
    OPERATION_NAME = "arith.fptosi"

    def _convert(self, value):
        return int(value)


@register_op
class ExtFOp(_CastOp):
    OPERATION_NAME = "arith.extf"

    def _convert(self, value):
        return float(value)


@register_op
class TruncFOp(_CastOp):
    OPERATION_NAME = "arith.truncf"

    def _convert(self, value):
        return float(value)


@register_op
class NegFOp(Operation):
    OPERATION_NAME = "arith.negf"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value) -> "NegFOp":
        return cls(operands=(value,), result_types=(value.type,))

    def fold(self):
        value = _const_value(self.operands[0])
        if value is None:
            return None
        return [FloatAttr(-float(value), self.results[0].type)]


def constant_int(value: int, type_: Optional[Type] = None) -> ConstantOp:
    """Convenience builder for integer constants (defaults to ``index``)."""
    return ConstantOp.build(value, type_ or IndexType())


def constant_float(value: float, type_: Optional[Type] = None) -> ConstantOp:
    return ConstantOp.build(value, type_ or FloatType(32))


def constant_bool(value: bool) -> ConstantOp:
    return ConstantOp.build(bool(value), i1())


def is_constant(value: Value) -> bool:
    return _const_value(value) is not None


def constant_value_of(value: Value):
    """Python constant behind ``value`` or None."""
    return _const_value(value)


class ArithDialect(Dialect):
    NAME = "arith"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp) — the dialect owns its
# execution semantics just like it owns its folds.
# ---------------------------------------------------------------------------

from ..interp.memory import TrapError  # noqa: E402  (registry-safe import)
from ..interp.registry import register_evaluator  # noqa: E402


def _coerce_to(type_: Type, value):
    """Round an evaluated result through its IR result type."""
    if is_float(type_):
        return float(value)
    if isinstance(type_, IntegerType) and type_.width == 1:
        return bool(value)
    return int(value)


@register_evaluator("arith.constant")
def _eval_constant(ctx, op, args):
    return [op.value]


def _eval_binary(ctx, op, args):
    try:
        result = op._compute(args[0], args[1])
    except (ZeroDivisionError, ValueError):
        # Integer division by zero traps; float ops follow IEEE-754
        # (divf by zero is a defined +-inf/NaN, remf by zero is NaN) so
        # that speculating a guarded divf (a legal move for a PURE op)
        # cannot turn into a spurious post-pipeline trap.
        if not is_float(op.results[0].type):
            raise TrapError(f"division by zero in '{op.name}'") from None
        result = _ieee_zero_divide(op.name, float(args[0]), float(args[1]))
    return [_coerce_to(op.results[0].type, result)]


def _ieee_zero_divide(op_name: str, a: float, b: float) -> float:
    if op_name == "arith.divf" and a != 0.0 and not math.isnan(a):
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return math.nan


for _name in (
    "arith.addi", "arith.subi", "arith.muli", "arith.divsi", "arith.divui",
    "arith.remsi", "arith.remui", "arith.andi", "arith.ori", "arith.xori",
    "arith.minsi", "arith.maxsi",
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf", "arith.remf",
    "arith.minf", "arith.maxf",
):
    register_evaluator(_name, _eval_binary)


def _eval_shift(ctx, op, args):
    # MLIR calls shifts >= the bit width (or negative) poison; trapping
    # also bounds the memory a runaway Python `1 << huge` would claim.
    width = getattr(op.results[0].type, "width", 64)
    shift = int(args[1])
    if not 0 <= shift < width:
        raise TrapError(
            f"shift amount {shift} out of range for "
            f"{op.results[0].type} in '{op.name}'")
    return [_coerce_to(op.results[0].type,
                       op._compute(int(args[0]), shift))]


register_evaluator("arith.shli", _eval_shift)
register_evaluator("arith.shrsi", _eval_shift)


def _eval_cmp(ctx, op, args):
    # Parsed IR bypasses build()-time validation, so guard the lookup.
    predicate = op.PREDICATES.get(op.predicate)
    if predicate is None:
        raise TrapError(
            f"unknown {op.name} predicate {op.predicate!r}")
    return [bool(predicate(args[0], args[1]))]


register_evaluator("arith.cmpi", _eval_cmp)
register_evaluator("arith.cmpf", _eval_cmp)


@register_evaluator("arith.select")
def _eval_select(ctx, op, args):
    return [args[1] if args[0] else args[2]]


def _eval_cast(ctx, op, args):
    try:
        return [_coerce_to(op.results[0].type, op._convert(args[0]))]
    except (ValueError, OverflowError) as error:
        # e.g. fptosi of NaN or of the inf a divf-by-zero produced.
        raise TrapError(
            f"'{op.name}' cannot convert {args[0]!r}: {error}") from None


for _name in (
    "arith.index_cast", "arith.extsi", "arith.trunci", "arith.sitofp",
    "arith.fptosi", "arith.extf", "arith.truncf",
):
    register_evaluator(_name, _eval_cast)


@register_evaluator("arith.negf")
def _eval_negf(ctx, op, args):
    return [-float(args[0])]
