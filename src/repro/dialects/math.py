"""``math`` dialect: transcendental and other scalar math functions."""

from __future__ import annotations

import math
from typing import Callable

from ..ir import (
    Dialect,
    FloatAttr,
    InterpretableOpInterface,
    Operation,
    Trait,
    Value,
    register_op,
)
from ..interp.memory import TrapError
from ..interp.registry import register_evaluator
from .arith import constant_value_of


class _UnaryMathOp(Operation, InterpretableOpInterface):
    TRAITS = frozenset({Trait.PURE, Trait.MAY_TRAP})
    PY_FUNC: Callable[[float], float] = staticmethod(lambda x: x)

    @classmethod
    def build(cls, value: Value) -> "_UnaryMathOp":
        return cls(operands=(value,), result_types=(value.type,))

    def fold(self):
        value = constant_value_of(self.operands[0])
        if value is None:
            return None
        try:
            result = type(self).PY_FUNC(float(value))
        except (ValueError, OverflowError, ZeroDivisionError):
            return None
        return [FloatAttr(result, self.results[0].type)]

    def interpret(self, args, ctx):
        # Interface-based evaluation (the registry fallback path): the
        # dialect's PY_FUNC *is* the semantics.
        try:
            return [float(type(self).PY_FUNC(float(args[0])))]
        except (ValueError, OverflowError, ZeroDivisionError) as error:
            raise TrapError(f"'{self.name}' domain error: {error}") from None


def _unary(name: str, func: Callable[[float], float]):
    @register_op
    class _Op(_UnaryMathOp):
        OPERATION_NAME = name
        PY_FUNC = staticmethod(func)

    _Op.__name__ = name.split(".")[-1].capitalize() + "Op"
    return _Op


SqrtOp = _unary("math.sqrt", math.sqrt)
RsqrtOp = _unary("math.rsqrt", lambda x: 1.0 / math.sqrt(x))
ExpOp = _unary("math.exp", math.exp)
LogOp = _unary("math.log", math.log)
SinOp = _unary("math.sin", math.sin)
CosOp = _unary("math.cos", math.cos)
AbsFOp = _unary("math.absf", abs)
FloorOp = _unary("math.floor", math.floor)
CeilOp = _unary("math.ceil", math.ceil)
TanhOp = _unary("math.tanh", math.tanh)


@register_op
class PowFOp(Operation):
    OPERATION_NAME = "math.powf"
    TRAITS = frozenset({Trait.PURE, Trait.MAY_TRAP})

    @classmethod
    def build(cls, base: Value, exponent: Value) -> "PowFOp":
        return cls(operands=(base, exponent), result_types=(base.type,))

    def fold(self):
        base = constant_value_of(self.operands[0])
        exponent = constant_value_of(self.operands[1])
        if base is None or exponent is None:
            return None
        # math.pow, not **: a negative base with a fractional exponent
        # must stay unfolded (it traps at runtime), not fold to complex.
        try:
            result = math.pow(float(base), float(exponent))
        except (ValueError, OverflowError, ZeroDivisionError):
            return None
        return [FloatAttr(result, self.results[0].type)]


@register_op
class FmaOp(Operation):
    """Fused multiply-add ``a * b + c``."""

    OPERATION_NAME = "math.fma"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, a: Value, b: Value, c: Value) -> "FmaOp":
        return cls(operands=(a, b, c), result_types=(a.type,))

    def fold(self):
        values = [constant_value_of(v) for v in self.operands]
        if any(v is None for v in values):
            return None
        a, b, c = (float(v) for v in values)
        return [FloatAttr(a * b + c, self.results[0].type)]


@register_evaluator("math.powf")
def _eval_powf(ctx, op, args):
    # math.pow, not **: a negative base with a fractional exponent must
    # trap (ValueError), not produce a complex that crashes downstream.
    try:
        return [math.pow(float(args[0]), float(args[1]))]
    except (ValueError, OverflowError, ZeroDivisionError) as error:
        raise TrapError(f"'math.powf' domain error: {error}") from None


@register_evaluator("math.fma")
def _eval_fma(ctx, op, args):
    return [float(args[0]) * float(args[1]) + float(args[2])]


class MathDialect(Dialect):
    NAME = "math"
