"""``math`` dialect: transcendental and other scalar math functions."""

from __future__ import annotations

import math
from typing import Callable, Dict

from ..ir import Dialect, FloatAttr, Operation, Trait, Value, register_op
from .arith import constant_value_of


class _UnaryMathOp(Operation):
    TRAITS = frozenset({Trait.PURE})
    PY_FUNC: Callable[[float], float] = staticmethod(lambda x: x)

    @classmethod
    def build(cls, value: Value) -> "_UnaryMathOp":
        return cls(operands=(value,), result_types=(value.type,))

    def fold(self):
        value = constant_value_of(self.operands[0])
        if value is None:
            return None
        try:
            result = type(self).PY_FUNC(float(value))
        except (ValueError, OverflowError):
            return None
        return [FloatAttr(result, self.results[0].type)]


def _unary(name: str, func: Callable[[float], float]):
    @register_op
    class _Op(_UnaryMathOp):
        OPERATION_NAME = name
        PY_FUNC = staticmethod(func)

    _Op.__name__ = name.split(".")[-1].capitalize() + "Op"
    return _Op


SqrtOp = _unary("math.sqrt", math.sqrt)
RsqrtOp = _unary("math.rsqrt", lambda x: 1.0 / math.sqrt(x))
ExpOp = _unary("math.exp", math.exp)
LogOp = _unary("math.log", math.log)
SinOp = _unary("math.sin", math.sin)
CosOp = _unary("math.cos", math.cos)
AbsFOp = _unary("math.absf", abs)
FloorOp = _unary("math.floor", math.floor)
CeilOp = _unary("math.ceil", math.ceil)
TanhOp = _unary("math.tanh", math.tanh)


@register_op
class PowFOp(Operation):
    OPERATION_NAME = "math.powf"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, base: Value, exponent: Value) -> "PowFOp":
        return cls(operands=(base, exponent), result_types=(base.type,))

    def fold(self):
        base = constant_value_of(self.operands[0])
        exponent = constant_value_of(self.operands[1])
        if base is None or exponent is None:
            return None
        return [FloatAttr(float(base) ** float(exponent), self.results[0].type)]


@register_op
class FmaOp(Operation):
    """Fused multiply-add ``a * b + c``."""

    OPERATION_NAME = "math.fma"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, a: Value, b: Value, c: Value) -> "FmaOp":
        return cls(operands=(a, b, c), result_types=(a.type,))

    def fold(self):
        values = [constant_value_of(v) for v in self.operands]
        if any(v is None for v in values):
            return None
        a, b, c = (float(v) for v in values)
        return [FloatAttr(a * b + c, self.results[0].type)]


#: Mapping used by the interpreter to evaluate unary math operations.
UNARY_EVALUATORS: Dict[str, Callable[[float], float]] = {
    "math.sqrt": math.sqrt,
    "math.rsqrt": lambda x: 1.0 / math.sqrt(x),
    "math.exp": math.exp,
    "math.log": math.log,
    "math.sin": math.sin,
    "math.cos": math.cos,
    "math.absf": abs,
    "math.floor": math.floor,
    "math.ceil": math.ceil,
    "math.tanh": math.tanh,
}


class MathDialect(Dialect):
    NAME = "math"
