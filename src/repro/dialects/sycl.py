"""The SYCL dialect (the paper's primary contribution, Sections III-IV).

The dialect models key entities of the SYCL programming model:

* **Device-side types**: ``id``, ``range``, ``item``, ``nd_item``, ``group``,
  ``nd_range`` and ``accessor`` / ``local_accessor`` become MLIR types, so
  kernels keep the SYCL class structure instead of lowering to raw pointers.
* **Device-side operations**: queries of the work-item position
  (``sycl.nd_item.get_global_id``, ``sycl.item.get_id``, ...), accessor
  element access (``sycl.accessor.subscript``), SYCL object construction
  (``sycl.constructor``) and work-group barriers (``sycl.group_barrier``).
* **Host-side operations**: construction of SYCL runtime objects
  (``sycl.host.constructor``) and kernel scheduling
  (``sycl.host.schedule_kernel``), produced by the host raising pass.

Traits mark known sources of (non-)uniformity so that the uniformity
analysis (Section V-C) stays dialect agnostic, and memory-effect interfaces
give the reaching-definition analysis and LICM precise semantics for each
operation (Sections V-B, VI-A).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ir import (
    Dialect,
    DYNAMIC,
    IndexType,
    IntegerAttr,
    MemoryEffect,
    MemoryEffectsInterface,
    MemRefType,
    Operation,
    StringAttr,
    SymbolRefAttr,
    Trait,
    Type,
    Value,
    i64,
    register_op,
)
from ..ir.interfaces import read, write


# ---------------------------------------------------------------------------
# SYCL dialect types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IDType(Type):
    """``sycl::id<D>`` — a D-dimensional index."""

    dimensions: int

    def __str__(self) -> str:
        return f"!sycl_id_{self.dimensions}"


@dataclass(frozen=True)
class RangeType(Type):
    """``sycl::range<D>`` — a D-dimensional extent."""

    dimensions: int

    def __str__(self) -> str:
        return f"!sycl_range_{self.dimensions}"


@dataclass(frozen=True)
class ItemType(Type):
    """``sycl::item<D>`` — position of a work-item in a simple range."""

    dimensions: int
    with_offset: bool = True

    def __str__(self) -> str:
        return f"!sycl_item_{self.dimensions}"


@dataclass(frozen=True)
class NDItemType(Type):
    """``sycl::nd_item<D>`` — position within an ND-range."""

    dimensions: int

    def __str__(self) -> str:
        return f"!sycl_nd_item_{self.dimensions}"


@dataclass(frozen=True)
class GroupType(Type):
    """``sycl::group<D>`` — the enclosing work-group."""

    dimensions: int

    def __str__(self) -> str:
        return f"!sycl_group_{self.dimensions}"


@dataclass(frozen=True)
class NDRangeType(Type):
    """``sycl::nd_range<D>`` — global + local iteration space."""

    dimensions: int

    def __str__(self) -> str:
        return f"!sycl_nd_range_{self.dimensions}"


#: Accessor access modes (subset of the SYCL 2020 access modes).
ACCESS_MODES = ("read", "write", "read_write")

#: Accessor targets: device global memory or work-group local memory.
ACCESS_TARGETS = ("device", "local")


@dataclass(frozen=True)
class AccessorType(Type):
    """``sycl::accessor<T, D, mode, target>``.

    The accessor is the heavy SYCL object described in Section II-A: it
    carries the data pointer, the full (memory) range, an access range and
    an offset.  Those members are observable through the
    ``sycl.accessor.get_*`` operations below.
    """

    dimensions: int
    element_type: Type
    access_mode: str = "read_write"
    target: str = "device"

    def __post_init__(self):
        if self.access_mode not in ACCESS_MODES:
            raise ValueError(f"invalid access mode {self.access_mode!r}")
        if self.target not in ACCESS_TARGETS:
            raise ValueError(f"invalid accessor target {self.target!r}")

    def __str__(self) -> str:
        suffix = "_local" if self.target == "local" else ""
        return (f"!sycl_accessor_{self.dimensions}_"
                f"{self.element_type}_{self.access_mode}{suffix}")

    @property
    def is_local(self) -> bool:
        return self.target == "local"

    @property
    def is_read_only(self) -> bool:
        return self.access_mode == "read"

    @property
    def is_write_only(self) -> bool:
        return self.access_mode == "write"


def local_accessor_type(dimensions: int, element_type: Type) -> AccessorType:
    """``sycl::local_accessor<T, D>`` (an accessor targeting local memory)."""
    return AccessorType(dimensions, element_type, "read_write", "local")


@dataclass(frozen=True)
class BufferType(Type):
    """``sycl::buffer<T, D>`` (host side)."""

    dimensions: int
    element_type: Type

    def __str__(self) -> str:
        return f"!sycl_buffer_{self.dimensions}_{self.element_type}"


@dataclass(frozen=True)
class QueueType(Type):
    def __str__(self) -> str:
        return "!sycl_queue"


@dataclass(frozen=True)
class HandlerType(Type):
    def __str__(self) -> str:
        return "!sycl_handler"


def memref_of(type_: Type, size: int = DYNAMIC) -> MemRefType:
    """Helper: ``memref<?x!sycl_...>`` used to pass SYCL objects by reference."""
    return MemRefType((size,), type_)


# ---------------------------------------------------------------------------
# Device-side operations
# ---------------------------------------------------------------------------

@register_op
class SYCLConstructorOp(Operation, MemoryEffectsInterface):
    """Constructs a SYCL object (id, range, ...) into a memref.

    Mirrors ``sycl.constructor @id (%out, %i, %j, %k)`` in Listing 3.
    """

    OPERATION_NAME = "sycl.constructor"

    @classmethod
    def build(cls, type_name: str, destination: Value,
              args: Sequence[Value]) -> "SYCLConstructorOp":
        return cls(operands=(destination, *args),
                   attributes={"type": SymbolRefAttr(type_name)})

    @property
    def destination(self) -> Value:
        return self.operands[0]

    @property
    def arguments(self) -> Sequence[Value]:
        return self.operands[1:]

    @property
    def constructed_type(self) -> str:
        attr = self.attributes["type"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.root

    def memory_effects(self) -> List[MemoryEffect]:
        return [write(self.destination)]


class _QueryOpBase(Operation, MemoryEffectsInterface):
    """Base for ``<object>.get_*(obj, dim)`` style query operations.

    The queried SYCL objects (items, nd_items, groups, accessors) are
    immutable inside device code — no SYCL dialect operation writes them —
    so queries are modelled as having no memory effects.  This is what lets
    LICM hoist them and CSE deduplicate them (paper, Section VI-A).
    """

    RESULT_TYPE: Type = IndexType()

    @classmethod
    def build(cls, source: Value, dimension: Optional[Value] = None):
        operands = (source,) if dimension is None else (source, dimension)
        return cls(operands=operands, result_types=(cls.RESULT_TYPE,))

    @property
    def source(self) -> Value:
        return self.operands[0]

    @property
    def dimension(self) -> Optional[Value]:
        return self.operands[1] if len(self.operands) > 1 else None

    def memory_effects(self) -> List[MemoryEffect]:
        return []


def _query_op(name: str, *, uniform: Optional[bool],
              result_type: Type = IndexType()):
    """Factory for query operations.

    ``uniform`` is ``True`` for work-group-uniform results, ``False`` for
    known non-uniform results (per-work-item ids) and ``None`` when
    uniformity follows from operands only.
    """
    traits = set()
    if uniform is True:
        traits.add(Trait.UNIFORM_SOURCE)
    elif uniform is False:
        traits.add(Trait.NON_UNIFORM_SOURCE)

    @register_op
    class _Op(_QueryOpBase):
        OPERATION_NAME = name
        TRAITS = frozenset(traits)
        RESULT_TYPE = result_type

    _Op.__name__ = "SYCL" + "".join(
        part.capitalize() for part in name.replace("sycl.", "").split("_" ) if part
    ).replace(".", "") + "Op"
    return _Op


# id / range element access -------------------------------------------------
SYCLIDGetOp = _query_op("sycl.id.get", uniform=None)
SYCLRangeGetOp = _query_op("sycl.range.get", uniform=None)
SYCLRangeSizeOp = _query_op("sycl.range.size", uniform=None)

# item queries ----------------------------------------------------------------
SYCLItemGetIDOp = _query_op("sycl.item.get_id", uniform=False)
SYCLItemGetLinearIDOp = _query_op("sycl.item.get_linear_id", uniform=False)
SYCLItemGetRangeOp = _query_op("sycl.item.get_range", uniform=True)

# nd_item queries -------------------------------------------------------------
SYCLNDItemGetGlobalIDOp = _query_op("sycl.nd_item.get_global_id", uniform=False)
SYCLNDItemGetGlobalLinearIDOp = _query_op(
    "sycl.nd_item.get_global_linear_id", uniform=False)
SYCLNDItemGetLocalIDOp = _query_op("sycl.nd_item.get_local_id", uniform=False)
SYCLNDItemGetLocalLinearIDOp = _query_op(
    "sycl.nd_item.get_local_linear_id", uniform=False)
SYCLNDItemGetGroupIDOp = _query_op("sycl.nd_item.get_group_id", uniform=True)
SYCLNDItemGetGlobalRangeOp = _query_op(
    "sycl.nd_item.get_global_range", uniform=True)
SYCLNDItemGetLocalRangeOp = _query_op(
    "sycl.nd_item.get_local_range", uniform=True)
SYCLNDItemGetGroupRangeOp = _query_op(
    "sycl.nd_item.get_group_range", uniform=True)

# group queries ---------------------------------------------------------------
SYCLGroupGetGroupIDOp = _query_op("sycl.group.get_group_id", uniform=True)
SYCLGroupGetLocalRangeOp = _query_op("sycl.group.get_local_range", uniform=True)
SYCLGroupGetGroupRangeOp = _query_op("sycl.group.get_group_range", uniform=True)


@register_op
class SYCLNDItemGetGroupOp(Operation, MemoryEffectsInterface):
    """Returns the ``sycl::group`` of an ``nd_item`` (Listing 7, line 12)."""

    OPERATION_NAME = "sycl.nd_item.get_group"
    TRAITS = frozenset({Trait.UNIFORM_SOURCE})

    @classmethod
    def build(cls, nd_item: Value, dimensions: int = 1) -> "SYCLNDItemGetGroupOp":
        return cls(operands=(nd_item,),
                   result_types=(GroupType(dimensions),),
                   attributes={"dimensions": IntegerAttr(dimensions, i64())})

    @property
    def nd_item(self) -> Value:
        return self.operands[0]

    def memory_effects(self) -> List[MemoryEffect]:
        return []


# accessor operations ---------------------------------------------------------

@register_op
class SYCLAccessorSubscriptOp(Operation, MemoryEffectsInterface):
    """``accessor[id]`` — yields a memref view of the addressed element.

    The result is a rank-1 dynamically-sized memref whose element 0 is the
    addressed element (matching Listing 3, lines 20-23).  Loads/stores go
    through ``affine.load`` / ``memref.load`` on the result.
    """

    OPERATION_NAME = "sycl.accessor.subscript"

    @classmethod
    def build(cls, accessor: Value, index: Value) -> "SYCLAccessorSubscriptOp":
        accessor_type = _accessor_type_of(accessor)
        space = "local" if accessor_type is not None and accessor_type.is_local \
            else "global"
        element = accessor_type.element_type if accessor_type is not None \
            else IndexType()
        result = MemRefType((DYNAMIC,), element, space)
        return cls(operands=(accessor, index), result_types=(result,))

    @property
    def accessor(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    def memory_effects(self) -> List[MemoryEffect]:
        # Computing the address reads the id object; the accessor metadata is
        # immutable in device code, and the actual element access is
        # performed by the load/store on the result.
        return [read(self.index)]


@register_op
class SYCLAccessorGetRangeOp(_QueryOpBase):
    """Access range of an accessor in one dimension."""

    OPERATION_NAME = "sycl.accessor.get_range"
    TRAITS = frozenset({Trait.UNIFORM_SOURCE})


@register_op
class SYCLAccessorGetMemRangeOp(_QueryOpBase):
    """Underlying buffer (memory) range of an accessor in one dimension."""

    OPERATION_NAME = "sycl.accessor.get_mem_range"
    TRAITS = frozenset({Trait.UNIFORM_SOURCE})


@register_op
class SYCLAccessorGetOffsetOp(_QueryOpBase):
    """Offset of a (ranged) accessor in one dimension."""

    OPERATION_NAME = "sycl.accessor.get_offset"
    TRAITS = frozenset({Trait.UNIFORM_SOURCE})


@register_op
class SYCLAccessorSizeOp(_QueryOpBase):
    """Total number of elements accessible through the accessor."""

    OPERATION_NAME = "sycl.accessor.size"
    TRAITS = frozenset({Trait.UNIFORM_SOURCE})


@register_op
class SYCLAccessorGetPointerOp(Operation, MemoryEffectsInterface):
    """Raw pointer (as a memref) underlying the accessor."""

    OPERATION_NAME = "sycl.accessor.get_pointer"

    @classmethod
    def build(cls, accessor: Value) -> "SYCLAccessorGetPointerOp":
        accessor_type = _accessor_type_of(accessor)
        element = accessor_type.element_type if accessor_type is not None \
            else IndexType()
        space = "local" if accessor_type is not None and accessor_type.is_local \
            else "global"
        return cls(operands=(accessor,),
                   result_types=(MemRefType((DYNAMIC,), element, space),))

    def memory_effects(self) -> List[MemoryEffect]:
        return []


@register_op
class SYCLGroupBarrierOp(Operation, MemoryEffectsInterface):
    """Work-group barrier (``group_barrier(group)``).

    Injecting this in a divergent region would deadlock, which is why Loop
    Internalization consults the uniformity analysis first (Section VI-C).
    """

    OPERATION_NAME = "sycl.group_barrier"
    TRAITS = frozenset({Trait.BARRIER})

    @classmethod
    def build(cls, group: Value) -> "SYCLGroupBarrierOp":
        return cls(operands=(group,))

    def memory_effects(self) -> List[MemoryEffect]:
        # A barrier orders all memory accesses of the work-group: model it as
        # a read and write of unspecified memory.
        return [read(None), write(None)]


@register_op
class SYCLLocalIDOp(_QueryOpBase):
    """Direct query of the work-item local id (used after lowering)."""

    OPERATION_NAME = "sycl.local_id"
    TRAITS = frozenset({Trait.NON_UNIFORM_SOURCE})


@register_op
class SYCLGlobalIDOp(_QueryOpBase):
    """Direct query of the work-item global id (used after lowering)."""

    OPERATION_NAME = "sycl.global_id"
    TRAITS = frozenset({Trait.NON_UNIFORM_SOURCE})


# ---------------------------------------------------------------------------
# Host-side operations (produced by the host raising pass, Section VII-A)
# ---------------------------------------------------------------------------

@register_op
class SYCLHostConstructorOp(Operation, MemoryEffectsInterface):
    """Construction of a SYCL runtime object in host code.

    ``sycl.host.constructor(%out, %args...) {type = "accessor", ...}``
    mirrors Listing 9.  The ``type`` attribute names the constructed SYCL
    class; additional attributes record statically-known construction
    parameters (dimensions, access mode, whether the accessor is ranged).
    """

    OPERATION_NAME = "sycl.host.constructor"

    @classmethod
    def build(cls, type_name: str, destination: Value, args: Sequence[Value],
              **extra_attrs) -> "SYCLHostConstructorOp":
        attrs = {"type": StringAttr(type_name)}
        for key, value in extra_attrs.items():
            if isinstance(value, int):
                attrs[key] = IntegerAttr(value, i64())
            elif isinstance(value, str):
                attrs[key] = StringAttr(value)
            else:
                attrs[key] = value
        return cls(operands=(destination, *args), attributes=attrs)

    @property
    def destination(self) -> Value:
        return self.operands[0]

    @property
    def arguments(self) -> Sequence[Value]:
        return self.operands[1:]

    @property
    def constructed_type(self) -> str:
        return self.get_str_attr("type", "")

    def memory_effects(self) -> List[MemoryEffect]:
        effects = [write(self.destination)]
        effects.extend(read(arg) for arg in self.arguments)
        return effects


@register_op
class SYCLHostScheduleKernelOp(Operation, MemoryEffectsInterface):
    """Scheduling of a device kernel from a command group.

    ``sycl.host.schedule_kernel %handler -> @kernels::@K [range %r](%args...)``
    (Listing 9).  Operands are the handler, optionally the ND-range / range
    objects, and the captured kernel arguments.  The ``kernel`` attribute is
    a nested symbol reference into the device module.
    """

    OPERATION_NAME = "sycl.host.schedule_kernel"

    @classmethod
    def build(cls, handler: Value, kernel_symbol: SymbolRefAttr,
              kernel_args: Sequence[Value],
              global_range: Optional[Value] = None,
              local_range: Optional[Value] = None) -> "SYCLHostScheduleKernelOp":
        operands = [handler]
        num_range_operands = 0
        if global_range is not None:
            operands.append(global_range)
            num_range_operands += 1
        if local_range is not None:
            operands.append(local_range)
            num_range_operands += 1
        operands.extend(kernel_args)
        attrs = {
            "kernel": kernel_symbol,
            "num_range_operands": IntegerAttr(num_range_operands, i64()),
            "has_local_range": IntegerAttr(1 if local_range is not None else 0,
                                           i64()),
        }
        return cls(operands=tuple(operands), attributes=attrs)

    @property
    def handler(self) -> Value:
        return self.operands[0]

    @property
    def kernel_symbol(self) -> SymbolRefAttr:
        attr = self.attributes["kernel"]
        assert isinstance(attr, SymbolRefAttr)
        return attr

    @property
    def kernel_name(self) -> str:
        return self.kernel_symbol.leaf

    @property
    def num_range_operands(self) -> int:
        return self.get_int_attr("num_range_operands", 0)

    @property
    def global_range(self) -> Optional[Value]:
        return self.operands[1] if self.num_range_operands >= 1 else None

    @property
    def local_range(self) -> Optional[Value]:
        if self.get_int_attr("has_local_range", 0) and self.num_range_operands >= 2:
            return self.operands[2]
        return None

    @property
    def kernel_arguments(self) -> Sequence[Value]:
        return self.operands[1 + self.num_range_operands:]

    def memory_effects(self) -> List[MemoryEffect]:
        effects = [read(self.handler)]
        effects.extend(read(arg) for arg in self.operands[1:])
        return effects


@register_op
class SYCLHostSubmitOp(Operation, MemoryEffectsInterface):
    """Submission of a command-group function to a queue."""

    OPERATION_NAME = "sycl.host.submit"

    @classmethod
    def build(cls, queue: Value, command_group_symbol: SymbolRefAttr) -> "SYCLHostSubmitOp":
        return cls(operands=(queue,), attributes={"cgf": command_group_symbol})

    def memory_effects(self) -> List[MemoryEffect]:
        return [read(self.operands[0]), write(None)]


# ---------------------------------------------------------------------------
# Helpers shared by analyses / transforms
# ---------------------------------------------------------------------------

def _accessor_type_of(value: Value) -> Optional[AccessorType]:
    """Extract the AccessorType behind a value (direct or via memref)."""
    type_ = value.type
    if isinstance(type_, AccessorType):
        return type_
    if isinstance(type_, MemRefType) and isinstance(type_.element_type, AccessorType):
        return type_.element_type
    return None


def accessor_type_of(value: Value) -> Optional[AccessorType]:
    return _accessor_type_of(value)


def is_sycl_type(type_: Type) -> bool:
    return isinstance(type_, (IDType, RangeType, ItemType, NDItemType, GroupType,
                              NDRangeType, AccessorType, BufferType, QueueType,
                              HandlerType))


#: Maps the printed suffix of simple dimensioned SYCL types to their class.
_DIMENSIONED_TYPES = {
    "id": IDType,
    "range": RangeType,
    "item": ItemType,
    "nd_item": NDItemType,
    "group": GroupType,
    "nd_range": NDRangeType,
}

_ACCESSOR_TYPE_RE = re.compile(
    r"sycl_accessor_(\d+)_(.+?)_(read_write|read|write)(_local)?$")
_BUFFER_TYPE_RE = re.compile(r"sycl_buffer_(\d+)_(.+)$")
_DIMENSIONED_TYPE_RE = re.compile(
    r"sycl_(nd_item|nd_range|id|range|item|group)_(\d+)$")


def parse_sycl_type(text, parse_type):
    """Dialect type-parser hook resolving printed ``!sycl_...`` types.

    ``text`` is the full raw spelling after ``!`` and may embed angle
    brackets from a parameterized element type (e.g.
    ``sycl_buffer_1_memref<4xf32>``).  Registered with
    :func:`repro.dialects.register_type_parser`; returns None for
    unrecognized spellings so the IR parser can report the error.
    """
    if text == "sycl_queue":
        return QueueType()
    if text == "sycl_handler":
        return HandlerType()
    m = _ACCESSOR_TYPE_RE.match(text)
    if m:
        target = "local" if m.group(4) else "device"
        return AccessorType(int(m.group(1)), parse_type(m.group(2)),
                            m.group(3), target)
    m = _BUFFER_TYPE_RE.match(text)
    if m:
        return BufferType(int(m.group(1)), parse_type(m.group(2)))
    m = _DIMENSIONED_TYPE_RE.match(text)
    if m:
        return _DIMENSIONED_TYPES[m.group(1)](int(m.group(2)))
    return None


#: Device operations that yield per-work-item (non-uniform) values.
NON_UNIFORM_QUERY_OPS: Tuple[str, ...] = (
    "sycl.item.get_id",
    "sycl.item.get_linear_id",
    "sycl.nd_item.get_global_id",
    "sycl.nd_item.get_global_linear_id",
    "sycl.nd_item.get_local_id",
    "sycl.nd_item.get_local_linear_id",
    "sycl.local_id",
    "sycl.global_id",
)


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp)
#
# Work-item queries read the WorkItemBinding the launcher bound to the
# kernel's item argument; accessor operations resolve through the
# AccessorBinding wired to a runtime Buffer.  ``sycl.group_barrier`` is a
# generator yielding the BARRIER signal, which suspends the work item
# until every unfinished item of its group arrives.
# ---------------------------------------------------------------------------

from ..interp.memory import (  # noqa: E402
    BARRIER,
    AccessorBinding,
    MemRefStorage,
    MemRefView,
    TrapError,
    WorkItemBinding,
)
from ..interp.registry import register_evaluator  # noqa: E402


def _dim_of(args) -> int:
    return int(args[1]) if len(args) > 1 else 0


def _at(values, dim: int, what: str) -> int:
    """Bounds-checked component access for dimension queries."""
    if not 0 <= dim < len(values):
        raise TrapError(
            f"dimension {dim} out of range for {what} of rank "
            f"{len(values)}")
    return int(values[dim])


def _work_item(value) -> WorkItemBinding:
    if not isinstance(value, WorkItemBinding):
        raise TrapError(
            "work-item query outside a kernel launch (the item argument "
            f"is bound to {value!r})")
    return value


def _require_local(item: WorkItemBinding) -> WorkItemBinding:
    if item.local_id is None:
        raise TrapError(
            "work-group query on a kernel launched without a local range")
    return item


def _id_tuple(value):
    """The index tuple behind an evaluated SYCL id value."""
    if isinstance(value, tuple):
        return value
    if isinstance(value, (MemRefStorage, MemRefView)):
        loaded = value.load_flat(0) if isinstance(value, MemRefStorage) \
            else value.load((0,))
        if loaded is None:
            raise TrapError("read of an unconstructed SYCL id")
        return loaded if isinstance(loaded, tuple) else (int(loaded),)
    return (int(value),)


def _accessor_binding(value) -> AccessorBinding:
    if not isinstance(value, AccessorBinding):
        raise TrapError(
            f"accessor operation on a non-accessor value {value!r}")
    return value


@register_evaluator("sycl.constructor")
def _eval_constructor(ctx, op, args):
    destination = args[0]
    if not isinstance(destination, (MemRefStorage, MemRefView)):
        raise TrapError("sycl.constructor destination is not memory")
    constructed = tuple(int(v) for v in args[1:])
    if isinstance(destination, MemRefStorage):
        destination.store_flat(0, constructed)
    else:
        destination.store((0,), constructed)
    return []


@register_evaluator("sycl.id.get")
def _eval_id_get(ctx, op, args):
    return [_at(_id_tuple(args[0]), _dim_of(args), "the id")]


@register_evaluator("sycl.range.get")
def _eval_range_get(ctx, op, args):
    return [_at(_id_tuple(args[0]), _dim_of(args), "the range")]


@register_evaluator("sycl.range.size")
def _eval_range_size(ctx, op, args):
    total = 1
    for extent in _id_tuple(args[0]):
        total *= int(extent)
    return [total]


# -- work-item position queries ----------------------------------------------

def _eval_global_id(ctx, op, args):
    item = _work_item(args[0])
    return [_at(item.global_id, _dim_of(args), "the global id")]


register_evaluator("sycl.item.get_id", _eval_global_id)
register_evaluator("sycl.nd_item.get_global_id", _eval_global_id)
register_evaluator("sycl.global_id", _eval_global_id)


def _eval_global_linear_id(ctx, op, args):
    return [_work_item(args[0]).global_linear_id()]


register_evaluator("sycl.item.get_linear_id", _eval_global_linear_id)
register_evaluator("sycl.nd_item.get_global_linear_id",
                   _eval_global_linear_id)


def _eval_local_id(ctx, op, args):
    item = _require_local(_work_item(args[0]))
    return [_at(item.local_id, _dim_of(args), "the local id")]


register_evaluator("sycl.nd_item.get_local_id", _eval_local_id)
register_evaluator("sycl.local_id", _eval_local_id)


@register_evaluator("sycl.nd_item.get_local_linear_id")
def _eval_local_linear_id(ctx, op, args):
    return [_require_local(_work_item(args[0])).local_linear_id()]


def _eval_group_id(ctx, op, args):
    item = _require_local(_work_item(args[0]))
    return [_at(item.group_id, _dim_of(args), "the group id")]


register_evaluator("sycl.nd_item.get_group_id", _eval_group_id)
register_evaluator("sycl.group.get_group_id", _eval_group_id)


def _eval_global_range(ctx, op, args):
    item = _work_item(args[0])
    return [_at(item.global_range, _dim_of(args), "the global range")]


register_evaluator("sycl.item.get_range", _eval_global_range)
register_evaluator("sycl.nd_item.get_global_range", _eval_global_range)


def _eval_local_range(ctx, op, args):
    item = _require_local(_work_item(args[0]))
    return [_at(item.local_range, _dim_of(args), "the local range")]


register_evaluator("sycl.nd_item.get_local_range", _eval_local_range)
register_evaluator("sycl.group.get_local_range", _eval_local_range)


def _eval_group_range(ctx, op, args):
    item = _require_local(_work_item(args[0]))
    return [_at(item.group_range, _dim_of(args), "the group range")]


register_evaluator("sycl.nd_item.get_group_range", _eval_group_range)
register_evaluator("sycl.group.get_group_range", _eval_group_range)


@register_evaluator("sycl.nd_item.get_group")
def _eval_get_group(ctx, op, args):
    # The work-item binding doubles as the group handle: group queries
    # read the same position fields.
    return [_require_local(_work_item(args[0]))]


# -- accessor operations ------------------------------------------------------

@register_evaluator("sycl.accessor.subscript")
def _eval_subscript(ctx, op, args):
    binding = _accessor_binding(args[0])
    indices = _id_tuple(args[1])
    return [MemRefView(binding.storage, binding.linear_offset(indices))]


@register_evaluator("sycl.accessor.get_pointer")
def _eval_get_pointer(ctx, op, args):
    # Based at the accessor's (linearized) offset so lowered IR —
    # get_pointer + row-major index arithmetic — addresses the same
    # elements subscript does, ranged accessors included.
    binding = _accessor_binding(args[0])
    return [MemRefView(binding.storage, binding.base_linear_offset())]


@register_evaluator("sycl.accessor.get_range")
def _eval_accessor_range(ctx, op, args):
    return [_at(_accessor_binding(args[0]).access_range, _dim_of(args),
                "the accessor range")]


@register_evaluator("sycl.accessor.get_mem_range")
def _eval_accessor_mem_range(ctx, op, args):
    return [_at(_accessor_binding(args[0]).mem_range, _dim_of(args),
                "the accessor mem range")]


@register_evaluator("sycl.accessor.get_offset")
def _eval_accessor_offset(ctx, op, args):
    return [_at(_accessor_binding(args[0]).offset, _dim_of(args),
                "the accessor offset")]


@register_evaluator("sycl.accessor.size")
def _eval_accessor_size(ctx, op, args):
    total = 1
    for extent in _accessor_binding(args[0]).access_range:
        total *= extent
    return [total]


@register_evaluator("sycl.group_barrier")
def _eval_group_barrier(ctx, op, args):
    if ctx.group is None:
        raise TrapError(
            "sycl.group_barrier outside work-group execution (launch the "
            "kernel with a local range)")
    ctx.counters.barriers += 1
    yield BARRIER
    return []


def _eval_host_op(ctx, op, args):
    raise TrapError(
        f"host-side operation '{op.name}' is not executable by the device "
        "interpreter (drive the host program through the runtime instead)")


register_evaluator("sycl.host.constructor", _eval_host_op)
register_evaluator("sycl.host.schedule_kernel", _eval_host_op)
register_evaluator("sycl.host.submit", _eval_host_op)


class SYCLDialect(Dialect):
    """Dialect descriptor; also exposes the SYCL alias-analysis hooks."""

    NAME = "sycl"

    @staticmethod
    def values_definitely_distinct(a: Value, b: Value) -> bool:
        """Dialect hook used by the SYCL-specific alias analysis.

        Returns True when the dialect can prove two values never reference
        overlapping memory (see ``repro.analysis.sycl_alias``).
        """
        from ..analysis.sycl_alias import sycl_values_definitely_distinct

        return sycl_values_definitely_distinct(a, b)
