"""``cf`` dialect: unstructured control flow between blocks.

``convert-scf-to-cf`` (:mod:`repro.target.conversions`) lowers the
structured ``scf`` operations into a branch-based CFG made of these two
terminators.  They are the only operations in the project that use
``Operation.successors``; the verifier's CFG dominance
(:mod:`repro.ir.dominance`) and the interpreter's block-dispatch loop
(:meth:`repro.interp.interpreter.EvalContext.invoke`) exist to give them
semantics.
"""

from __future__ import annotations

from typing import Sequence

from ..ir import (
    Block,
    Dialect,
    IntegerAttr,
    Operation,
    Trait,
    Value,
    i64,
    register_op,
)


@register_op
class BranchOp(Operation):
    """Unconditional branch: ``cf.br ^dest(%args...)``."""

    OPERATION_NAME = "cf.br"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, dest: Block,
              args: Sequence[Value] = ()) -> "BranchOp":
        return cls(operands=tuple(args), successors=(dest,))

    @property
    def dest(self) -> Block:
        return self.successors[0]

    @property
    def dest_operands(self) -> Sequence[Value]:
        return self.operands

    def verify_op(self) -> None:
        if len(self.successors) != 1:
            raise ValueError("cf.br needs exactly one successor")
        if len(self.operands) != len(self.dest.arguments):
            raise ValueError(
                f"branch passes {len(self.operands)} value(s) to a block "
                f"expecting {len(self.dest.arguments)} argument(s)")


@register_op
class CondBranchOp(Operation):
    """Conditional branch: ``cf.cond_br %c, ^then(...), ^else(...)``.

    The operand list is ``condition, true_args..., false_args...``; the
    split point is recorded in the ``num_true_args`` attribute so the op
    survives printing/parsing with its full semantics.
    """

    OPERATION_NAME = "cf.cond_br"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, condition: Value, true_dest: Block,
              true_args: Sequence[Value] = (),
              false_dest: Block = None,
              false_args: Sequence[Value] = ()) -> "CondBranchOp":
        return cls(
            operands=(condition, *true_args, *false_args),
            attributes={"num_true_args": IntegerAttr(len(true_args), i64())},
            successors=(true_dest, false_dest))

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_dest(self) -> Block:
        return self.successors[0]

    @property
    def false_dest(self) -> Block:
        return self.successors[1]

    @property
    def true_operands(self) -> Sequence[Value]:
        split = 1 + self.get_int_attr("num_true_args", 0)
        return self.operands[1:split]

    @property
    def false_operands(self) -> Sequence[Value]:
        split = 1 + self.get_int_attr("num_true_args", 0)
        return self.operands[split:]

    def verify_op(self) -> None:
        if len(self.successors) != 2:
            raise ValueError("cf.cond_br needs exactly two successors")
        num_true = self.get_int_attr("num_true_args", 0)
        if not 0 <= num_true <= len(self.operands) - 1:
            raise ValueError(
                f"num_true_args ({num_true}) out of range for "
                f"{len(self.operands) - 1} destination operand(s)")
        if len(self.true_operands) != len(self.true_dest.arguments) \
                or len(self.false_operands) != len(self.false_dest.arguments):
            raise ValueError(
                "cf.cond_br destination operand counts do not match the "
                "successor block arguments")


class CFDialect(Dialect):
    NAME = "cf"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp).  A branch does not execute
# the target block itself: it returns a ``"branch"`` BlockResult and the
# function-level dispatch loop in ``EvalContext.invoke`` follows it, so
# barrier suspension keeps working through arbitrarily long block chains.
# ---------------------------------------------------------------------------

from ..interp.memory import BlockResult  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("cf.br")
def _eval_br(ctx, op, args):
    return BlockResult("branch", (op.dest, tuple(args)))


@register_evaluator("cf.cond_br")
def _eval_cond_br(ctx, op, args):
    split = 1 + op.get_int_attr("num_true_args", 0)
    if args[0]:
        return BlockResult("branch", (op.true_dest, tuple(args[1:split])))
    return BlockResult("branch", (op.false_dest, tuple(args[split:])))
