"""``repro-lint`` — static miscompile-class checks over textual IR.

Parses one or more IR files and runs the lint rule engine
(:mod:`repro.analysis.lint`) over each module *without executing
anything*: the two miscompile classes PR 5's differential interpreter
caught dynamically (non-dominating cached pointers, speculated traps)
are reported here as source-located diagnostics on the unexecuted IR.

A pipeline can optionally be applied first (``--pipeline sycl-mlir`` or
``--passes 'cse,licm'``), so CI can assert that a shipped pipeline's
*output* stays lint-clean — the lint-smoke job runs every listing module
through every shipped pipeline this way.

Exit status: 0 when clean, 1 on any finding (or a parse failure), 2 on
usage errors.  Findings print to stderr as
``file:line:col: severity: message``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..dialects import all_dialects  # noqa: F401 - registers ops and types
from ..ir import ParseError, VerificationError, parse_module, verify
from ..analysis.lint import describe_lint_rules, run_lint
from ..analysis.manager import AnalysisManager
from ..transforms.compile_cache import CompileCache
from ..transforms.disk_cache import DiskCache, cache_dir_from_env
from ..transforms.pipelines import (
    NAMED_PIPELINES,
    build_named_pipeline,
    check_pass_pipeline,
    parse_pass_pipeline,
)
from .repro_opt import _collect_segments


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically lint textual IR for miscompile classes.")
    parser.add_argument(
        "inputs", nargs="*", default=["-"], metavar="input",
        help="input IR files, or '-' for stdin (default)")
    parser.add_argument(
        "--split-input-file", action="store_true",
        help="split each input on '// -----' lines and lint every "
             "segment as its own module")
    parser.add_argument(
        "--rules", default=None, metavar="NAME[,NAME...]",
        help="comma-separated subset of lint rules to run (default: all)")
    parser.add_argument(
        "--passes", default=None, metavar="SPEC",
        help="run this pass pipeline spec before linting")
    parser.add_argument(
        "--pipeline", default=None, choices=sorted(NAMED_PIPELINES),
        help="run a full compiler-model pipeline before linting")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for the optional pipeline run (default 1)")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip IR verification before linting")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="root of a persistent on-disk compile cache for the "
             "optional pipeline run, shared with repro-opt and "
             "repro-served (default: $REPRO_CACHE_DIR when set)")
    parser.add_argument(
        "--analysis-stats", action="store_true",
        help="print analysis-manager cache statistics to stderr")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered lint rules and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: :func:`_main` plus graceful Ctrl-C (exit 130,
    no traceback, no orphaned workers)."""
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("repro-lint: interrupted", file=sys.stderr)
        return 130


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_rules:
        print(describe_lint_rules())
        return 0
    if args.passes and args.pipeline:
        print("repro-lint: --passes and --pipeline are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2
    rules = [name.strip() for name in args.rules.split(",") if name.strip()] \
        if args.rules is not None else None

    if args.passes:
        # Static spec check first: a malformed spec is reported with its
        # character offset before any input is read or parsed.
        problems = check_pass_pipeline(args.passes)
        if problems:
            for diagnostic in problems:
                print(f"repro-lint: {diagnostic.render()}", file=sys.stderr)
            return 2

    try:
        segments = _collect_segments(args)
    except OSError as exc:
        print(f"repro-lint: cannot read input: {exc}", file=sys.stderr)
        return 1

    modules = []
    for label, text in segments:
        try:
            # Parse under the real file name so findings carry
            # file:line:col locations pointing into the input.
            filename = label.split(" (segment")[0]
            modules.append(parse_module(text, filename=filename))
        except ParseError as exc:
            print(f"repro-lint: {label}: parse error: {exc}",
                  file=sys.stderr)
            return 1

    manager = None
    if args.pipeline or args.passes:
        try:
            if args.pipeline:
                manager = build_named_pipeline(args.pipeline, jobs=args.jobs)
            else:
                manager = parse_pass_pipeline(args.passes)
                manager.jobs = args.jobs
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
    # CI lints the same pipelines over the same listings repeatedly —
    # a disk-backed cache turns those re-runs warm.
    cache_dir = args.cache_dir or cache_dir_from_env()
    if manager is not None and cache_dir:
        manager.cache = CompileCache(disk=DiskCache(cache_dir))

    # One analysis manager across every module and rule: repeated rules
    # (and repeated modules sharing anchors) hit warm caches.
    am = AnalysisManager()
    findings_total = 0
    try:
        for (label, _), module in zip(segments, modules):
            try:
                if not args.no_verify:
                    verify(module)
                if manager is not None:
                    manager.run(module)
            except VerificationError as exc:
                print(f"repro-lint: {label}: verification failed: {exc}",
                      file=sys.stderr)
                return 1
            except ValueError as exc:
                print(f"repro-lint: {label}: {exc}", file=sys.stderr)
                return 2
            try:
                findings = run_lint(module, rules=rules, am=am)
            except ValueError as exc:
                print(f"repro-lint: {exc}", file=sys.stderr)
                return 2
            for diagnostic in findings:
                print(diagnostic.render(), file=sys.stderr)
            findings_total += len(findings)
    finally:
        if manager is not None:
            manager.close()

    if args.analysis_stats:
        print(f"analysis manager: {am.describe()}", file=sys.stderr)
    if findings_total:
        plural = "s" if findings_total != 1 else ""
        print(f"repro-lint: {findings_total} finding{plural}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
