"""Command-line tools for the reproduction (mlir-opt-style drivers).

The driver lives in :mod:`repro.tools.repro_opt`; it is deliberately not
imported here so ``python -m repro.tools.repro_opt`` runs without a
double-import RuntimeWarning.
"""

__all__ = ["repro_opt"]
