"""``repro-client`` — one-shot client for the ``repro-served`` daemon.

A thin CLI over :class:`repro.serve.ServeClient`: compile IR through a
running daemon (``repro-client input.mlir --passes 'cse,dce'``), or poke
it with ``--ping``, ``--status`` and ``--shutdown``.  The optimized IR
prints to stdout exactly as ``repro-opt`` would print it, so the two
are drop-in interchangeable in scripts — the daemon just keeps the
caches warm between calls.

Exit status mirrors ``repro-opt``: 0 success, 1 compile/connection
failure, 2 usage errors, 130 on Ctrl-C.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import List, Optional

from ..serve import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ProtocolError,
    ServeClient,
    ServeError,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Send compile requests to a repro-served daemon.")
    parser.add_argument(
        "inputs", nargs="*", default=["-"], metavar="input",
        help="input IR files, or '-' for stdin (default)")
    parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"daemon address (default {DEFAULT_HOST})")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"daemon port (default {DEFAULT_PORT})")
    parser.add_argument(
        "--passes", default=None, metavar="SPEC",
        help="pass pipeline spec to compile through")
    parser.add_argument(
        "--progress", action="store_true",
        help="stream per-pass progress events to stderr "
             "(bypasses the daemon's compile cache)")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="ask the daemon to skip IR verification")
    parser.add_argument(
        "--print-locations", action="store_true",
        help="print source locations in the optimized output")
    parser.add_argument(
        "--report", action="store_true",
        help="print the compile's statistics and remarks to stderr")
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="socket timeout per request (default 60)")
    parser.add_argument(
        "--ping", action="store_true",
        help="check the daemon is alive and exit")
    parser.add_argument(
        "--status", action="store_true",
        help="print the daemon's status (JSON) and exit")
    parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to shut down and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: :func:`_main` plus graceful Ctrl-C (130)."""
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("repro-client: interrupted", file=sys.stderr)
        return 130


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _progress_printer(event: dict) -> None:
    phase = event.get("phase", "?")
    name = event.get("pass", "?")
    print(f"repro-client: [{phase}] {name}", file=sys.stderr)


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    control = args.ping or args.status or args.shutdown
    if not control and not args.passes:
        print("repro-client: --passes is required to compile",
              file=sys.stderr)
        return 2

    try:
        client = ServeClient(host=args.host, port=args.port,
                             timeout=args.timeout)
    except OSError as exc:
        print(f"repro-client: cannot connect to "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    with client:
        try:
            if args.ping:
                response = client.ping()
                print(f"repro-client: daemon alive "
                      f"(protocol {response.get('protocol')})")
                return 0
            if args.status:
                print(json.dumps(client.status(), indent=2, sort_keys=True))
                return 0
            if args.shutdown:
                client.shutdown()
                print("repro-client: daemon shutting down")
                return 0
            exit_code = 0
            for path in args.inputs:
                try:
                    ir = _read_input(path)
                except OSError as exc:
                    print(f"repro-client: cannot read input: {exc}",
                          file=sys.stderr)
                    return 1
                try:
                    done = client.compile(
                        ir, args.passes,
                        progress=_progress_printer if args.progress
                        else None,
                        verify=not args.no_verify,
                        print_locations=args.print_locations)
                except ServeError as exc:
                    print(f"repro-client: {path}: {exc}", file=sys.stderr)
                    exit_code = max(exit_code, 1)
                    continue
                sys.stdout.write(done["text"])
                if args.report:
                    for pass_name, name, value in done["statistics"]:
                        print(f"  {pass_name}: {name} = {value}",
                              file=sys.stderr)
                    for remark in done["remarks"]:
                        print(f"  remark: {remark}", file=sys.stderr)
                    if done.get("cached"):
                        print("  compile-cache: served warm",
                              file=sys.stderr)
            return exit_code
        except (ServeError, ProtocolError, socket.timeout, OSError) as exc:
            print(f"repro-client: {exc}", file=sys.stderr)
            return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
