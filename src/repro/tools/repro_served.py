"""``repro-served`` — the persistent compile daemon.

Hosts a :class:`~repro.serve.CompileService` behind a threading TCP
server speaking the NDJSON protocol (:mod:`repro.serve.protocol`).
One daemon process keeps the expensive compiler state warm across any
number of client requests: the two-tier compile cache (in-memory LRU
over an optional on-disk store), the shared analysis manager, and a
pool of constructed pass managers.

Lifecycle contract (the PR 7 rules, extended to a daemon):

* On startup the daemon prints ``repro-served: listening on HOST:PORT``
  to stdout (flushed), so scripts and CI can scrape the bound port —
  essential with ``--port 0``.
* Ctrl-C (SIGINT) exits 130 after ``repro-served: interrupted``.
* SIGTERM drains cleanly and exits 0 after
  ``repro-served: terminated`` — a supervisor's stop is not an error.
* A client ``shutdown`` request also exits 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from ..dialects import all_dialects  # noqa: F401 - registers ops and types
from ..serve import DEFAULT_HOST, DEFAULT_PORT, CompileService, ReproServer
from ..transforms.disk_cache import CACHE_DIR_ENV, cache_dir_from_env


class _Terminated(Exception):
    """SIGTERM arrived; unwind to a clean exit 0."""


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-served",
        description="Serve compile requests over newline-delimited JSON.")
    parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"address to bind (default {DEFAULT_HOST})")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"port to bind; 0 picks a free port (default {DEFAULT_PORT})")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="root of the persistent on-disk artifact cache "
             f"(default: ${CACHE_DIR_ENV} when set, else no disk tier)")
    parser.add_argument(
        "--max-entries", type=int, default=256, metavar="N",
        help="in-memory cache entries to keep (default 256)")
    parser.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="BYTES",
        help="on-disk cache budget in bytes (default 256 MiB)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: :func:`_main` plus the signal contract."""
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("repro-served: interrupted", file=sys.stderr)
        return 130
    except _Terminated:
        print("repro-served: terminated", file=sys.stderr)
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.port < 0 or args.port > 65535:
        print("repro-served: --port must be 0..65535", file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or cache_dir_from_env()

    try:
        service = CompileService(cache_dir=cache_dir,
                                 max_entries=args.max_entries,
                                 max_bytes=args.max_cache_bytes)
        server = ReproServer((args.host, args.port), service)
    except (OSError, ValueError) as exc:
        print(f"repro-served: cannot start: {exc}", file=sys.stderr)
        return 1

    def _on_sigterm(signum, frame):
        raise _Terminated()

    # SIGTERM is how a supervisor stops us: exit 0, not a crash.  The
    # handler raises out of serve_forever's poll loop in the main
    # thread; ``finally`` closes the socket before the process exits.
    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    print(f"repro-served: listening on {server.host}:{server.port}",
          flush=True)
    if cache_dir:
        print(f"repro-served: disk cache at {cache_dir}", file=sys.stderr)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
