"""``repro-opt`` — an ``mlir-opt`` analogue for the reproduction's IR.

Reads textual IR (file or stdin), verifies it, runs either a pass pipeline
spec (``--passes 'builtin.module(cse,func.func(canonicalize))'``, flat
``--passes canonicalize,cse`` also accepted) or one of the paper's full
compiler-model pipelines (``--pipeline sycl-mlir``), verifies the result,
and prints the optimized IR.  The compile report (statistics and remarks
collected by the passes) can be dumped with ``--report``.

Pass-instrumentation backed debugging flags mirror mlir-opt:

* ``--print-ir-before PASS`` / ``--print-ir-after PASS`` /
  ``--print-ir-after-all`` dump the anchored IR around pass executions;
* ``--verify-each`` verifies the IR after every pass (and dumps the broken
  IR when verification fails);
* ``--dump-pass-pipeline`` prints the canonical spec of the pipeline about
  to run (the ``parse_pass_pipeline`` / ``dump_pass_pipeline`` round trip);
* ``--timing`` prints a per-pass wall-time table keyed by pipeline
  position, so duplicate passes stay distinguishable.

Batch mode: several input paths and/or ``--split-input-file`` (segments
separated by ``// -----`` lines, the mlir-opt convention) compile every
module through *one* pass manager — one fingerprint-keyed
:class:`~repro.transforms.compile_cache.CompileCache` (disable with
``--no-cache``) and, with ``--jobs N``, one shared worker pool that runs
``func.func``-anchored pipelines once per function concurrently.
Optimized modules are printed in input order, joined by ``// -----``.

This is the workflow MLIR passes are developed against: every transform
gets textual before/after test cases runnable through this driver (see
``docs/textual_ir.md`` and the FileCheck-lite helper in ``tests/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..dialects import all_dialects  # noqa: F401 - registers ops and types
from ..ir import ParseError, Printer, VerificationError, parse_module, verify
from ..transforms.compile_cache import CompileCache
from ..transforms.pass_manager import (
    CompileReport,
    IRPrintingInstrumentation,
    VerifierInstrumentation,
)
from ..transforms.pipelines import (
    NAMED_PIPELINES,
    describe_registered_passes,
    build_named_pipeline,
    dump_pass_pipeline,
    parse_pass_pipeline,
    resolve_pass_name,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="Parse, optimize and re-print textual IR.")
    parser.add_argument(
        "inputs", nargs="*", default=["-"], metavar="input",
        help="input IR files, or '-' for stdin (default); several files "
             "form a batch compiled through one shared cache and pool")
    parser.add_argument(
        "-o", "--output", default="-",
        help="output file, or '-' for stdout (default)")
    parser.add_argument(
        "--split-input-file", action="store_true",
        help="split each input on '// -----' lines and compile every "
             "segment as its own module (batch mode)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run func.func-anchored pipelines once per function across "
             "N worker threads (default 1 = serial)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the fingerprint-keyed compile cache shared across "
             "batch segments")
    parser.add_argument(
        "--passes", default=None, metavar="SPEC",
        help="pass pipeline spec, e.g. 'canonicalize,cse' or "
             "'builtin.module(cse,func.func(canonicalize"
             "{max-iterations=10},licm))'")
    parser.add_argument(
        "--pipeline", default=None, choices=sorted(NAMED_PIPELINES),
        help="run a full compiler-model pipeline instead of --passes")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip IR verification before and after the pipeline")
    parser.add_argument(
        "--verify-each", action="store_true",
        help="verify the IR after every pass "
             "(VerifierInstrumentation)")
    parser.add_argument(
        "--report", action="store_true",
        help="print the compile report (statistics, remarks) to stderr")
    parser.add_argument(
        "--timing", action="store_true",
        help="print a per-pass timing table to stderr "
             "(mlir-opt's -mlir-timing analogue)")
    parser.add_argument(
        "--print-ir-before", action="append", default=[], metavar="PASS",
        help="print the anchored IR to stderr before each run of PASS "
             "(repeatable)")
    parser.add_argument(
        "--print-ir-after", action="append", default=[], metavar="PASS",
        help="print the anchored IR to stderr after each run of PASS "
             "(repeatable)")
    parser.add_argument(
        "--print-ir-after-all", action="store_true",
        help="print the anchored IR to stderr after every pass")
    parser.add_argument(
        "--dump-pass-pipeline", action="store_true",
        help="print the canonical pipeline spec to stderr before running")
    parser.add_argument(
        "--allow-unregistered", action="store_true",
        help="accept operations not present in the operation registry")
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list registered passes with their option schemas and exit")
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _format_timing_table(timings) -> str:
    """Per-pass wall-time table in pass-execution order.

    Rows are keyed by pipeline position (``"3: canonicalize"``), so two
    instances of the same pass report separately.
    """
    total = sum(timings.values())
    width = 70
    lines = [
        "===" + "-" * (width - 6) + "===",
        "{:^{width}}".format("... Pass execution timing report ...",
                             width=width),
        "===" + "-" * (width - 6) + "===",
        f"  Total Execution Time: {total:.4f} seconds",
        "",
        "  ----Wall Time----  ----Name----",
    ]
    for name, seconds in timings.items():
        percent = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {seconds:9.4f} ({percent:5.1f}%)  {name}")
    lines.append(f"  {total:9.4f} (100.0%)  Total")
    return "\n".join(lines)


def _write_output(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


#: Segment separator for ``--split-input-file`` (the mlir-opt convention).
SPLIT_MARKER = "// -----"


def _split_segments(text: str) -> List[str]:
    """Split ``text`` on ``// -----`` separator lines."""
    segments: List[str] = []
    current: List[str] = []
    for line in text.splitlines(keepends=True):
        if line.strip() == SPLIT_MARKER:
            segments.append("".join(current))
            current = []
        else:
            current.append(line)
    segments.append("".join(current))
    return [segment for segment in segments if segment.strip()]


def _collect_segments(args) -> List[tuple]:
    """``(origin label, IR text)`` per module to compile, in input order."""
    segments: List[tuple] = []
    for path in args.inputs:
        text = _read_input(path)
        label = "<stdin>" if path == "-" else path
        if args.split_input_file:
            parts = _split_segments(text)
            for index, part in enumerate(parts):
                suffix = f" (segment {index + 1})" if len(parts) > 1 else ""
                segments.append((label + suffix, part))
        else:
            segments.append((label, text))
    return segments


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_passes:
        print(describe_registered_passes())
        return 0
    if args.passes and args.pipeline:
        print("repro-opt: --passes and --pipeline are mutually exclusive",
              file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("repro-opt: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        segments = _collect_segments(args)
    except OSError as exc:
        print(f"repro-opt: cannot read input: {exc}", file=sys.stderr)
        return 1

    modules = []
    for label, text in segments:
        try:
            modules.append(parse_module(
                text, allow_unregistered=args.allow_unregistered))
        except ParseError as exc:
            print(f"repro-opt: {label}: parse error: {exc}", file=sys.stderr)
            return 1

    try:
        if args.pipeline:
            manager = build_named_pipeline(args.pipeline, jobs=args.jobs)
        elif args.passes:
            manager = parse_pass_pipeline(args.passes)
            manager.jobs = args.jobs
        else:
            manager = None
    except ValueError as exc:
        print(f"repro-opt: {exc}", file=sys.stderr)
        return 2

    cache = None
    if manager is not None:
        if args.verify_each:
            manager.add_instrumentation(VerifierInstrumentation())
        try:
            # Selectors match the NAME pass executions carry, so resolve
            # aliases (`licm` -> `sycl-licm`) and reject typos up front.
            print_before = [resolve_pass_name(n)
                            for n in args.print_ir_before]
            print_after = True if args.print_ir_after_all else \
                [resolve_pass_name(n) for n in args.print_ir_after]
        except ValueError as exc:
            print(f"repro-opt: {exc}", file=sys.stderr)
            return 2
        if print_before or print_after:
            manager.add_instrumentation(IRPrintingInstrumentation(
                print_before=print_before,
                print_after=print_after))
        if args.dump_pass_pipeline:
            print(dump_pass_pipeline(manager), file=sys.stderr)
        # A cache can only hit across segments of one invocation, and an
        # instrumented manager never consults it (hits would swallow
        # --verify-each / --print-ir output) — create one only when it
        # can actually serve, so --report never shows a dead cache.
        if not args.no_cache and len(segments) > 1 \
                and not manager.instrumentations:
            cache = CompileCache()
            manager.cache = cache

    # One report aggregates the whole batch: every segment runs the same
    # pipeline, so position-keyed timing buckets sum across segments.
    report = CompileReport() if manager is not None else None
    printed: List[str] = []
    try:
        for (label, _), module in zip(segments, modules):
            try:
                if not args.no_verify:
                    verify(module)
                if manager is not None:
                    manager.run(module, report=report)
                if not args.no_verify:
                    verify(module)
            except VerificationError as exc:
                print(f"repro-opt: {label}: verification failed: {exc}",
                      file=sys.stderr)
                return 1
            except ValueError as exc:
                print(f"repro-opt: {label}: {exc}", file=sys.stderr)
                return 2
            printed.append(Printer().print_module(module) + "\n")
    finally:
        if manager is not None:
            manager.close()

    _write_output(args.output, (SPLIT_MARKER + "\n").join(printed))
    if args.report and report is not None:
        print(report.summary(), file=sys.stderr)
        if cache is not None:
            stats = cache.describe()
            print(f"compile cache: {stats['hits']} hits, "
                  f"{stats['misses']} misses, {stats['entries']} entries",
                  file=sys.stderr)
    if args.timing and report is not None:
        print(_format_timing_table(report.timings), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
