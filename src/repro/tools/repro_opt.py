"""``repro-opt`` — an ``mlir-opt`` analogue for the reproduction's IR.

Reads textual IR (file or stdin), verifies it, runs either a pass pipeline
spec (``--passes 'builtin.module(cse,func.func(canonicalize))'``, flat
``--passes canonicalize,cse`` also accepted) or one of the paper's full
compiler-model pipelines (``--pipeline sycl-mlir``), verifies the result,
and prints the optimized IR.  The compile report (statistics and remarks
collected by the passes) can be dumped with ``--report``.

Pass-instrumentation backed debugging flags mirror mlir-opt:

* ``--print-ir-before PASS`` / ``--print-ir-after PASS`` /
  ``--print-ir-after-all`` dump the anchored IR around pass executions;
* ``--verify-each`` verifies the IR after every pass (and dumps the broken
  IR when verification fails);
* ``--lint`` runs the static lint rules (:mod:`repro.analysis.lint`) on
  the final IR; ``--lint-each`` lints after every pass, naming the pass
  that introduced each finding;
* ``--verify-diagnostics`` checks emitted diagnostics against
  ``// expected-error {{...}}`` comments in the input (mlir-opt's
  ``-verify-diagnostics``); output IR is suppressed in this mode;
* ``--print-locations`` prints ``loc(...)`` trailers on every operation
  (mlir-opt's ``-mlir-print-debuginfo``);
* ``--dump-pass-pipeline`` prints the canonical spec of the pipeline about
  to run (the ``parse_pass_pipeline`` / ``dump_pass_pipeline`` round trip);
* ``--timing`` prints a per-pass wall-time table keyed by pipeline
  position, so duplicate passes stay distinguishable.

Batch mode: several input paths and/or ``--split-input-file`` (segments
separated by ``// -----`` lines, the mlir-opt convention) compile every
module through *one* pass manager — one fingerprint-keyed
:class:`~repro.transforms.compile_cache.CompileCache` (disable with
``--no-cache``) and, with ``--jobs N``, one shared worker pool that runs
``func.func``-anchored pipelines once per function concurrently.
Optimized modules are printed in input order, joined by ``// -----``.

This is the workflow MLIR passes are developed against: every transform
gets textual before/after test cases runnable through this driver (see
``docs/textual_ir.md`` and the FileCheck-lite helper in ``tests/``).
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional, Tuple

from ..dialects import all_dialects  # noqa: F401 - registers ops and types
from ..ir import (
    DiagnosticEngine,
    ParseError,
    Printer,
    Severity,
    VerificationError,
    parse_module,
    verify,
    verify_with_diagnostics,
)
from ..analysis.lint import run_lint
from ..transforms.compile_cache import CompileCache, text_fingerprint
from ..transforms.disk_cache import DiskCache, cache_dir_from_env
from ..transforms.executor import (
    ExecutorOptions,
    TierError,
    WorkResult,
    WorkUnit,
    validate_segment_result,
)
from ..transforms.pass_manager import (
    CompileReport,
    IRPrintingInstrumentation,
    LintInstrumentation,
    VerifierInstrumentation,
)
from ..transforms.pipelines import (
    NAMED_PIPELINES,
    check_pass_pipeline,
    describe_registered_passes,
    build_named_pipeline,
    dump_pass_pipeline,
    parse_pass_pipeline,
    resolve_pass_name,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="Parse, optimize and re-print textual IR.")
    parser.add_argument(
        "inputs", nargs="*", default=["-"], metavar="input",
        help="input IR files, or '-' for stdin (default); several files "
             "form a batch compiled through one shared cache and pool")
    parser.add_argument(
        "-o", "--output", default="-",
        help="output file, or '-' for stdout (default)")
    parser.add_argument(
        "--split-input-file", action="store_true",
        help="split each input on '// -----' lines and compile every "
             "segment as its own module (batch mode)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run func.func-anchored pipelines once per function across "
             "N worker threads (default 1 = serial)")
    parser.add_argument(
        "--parallel-tier", default="thread", choices=("thread", "process"),
        help="worker tier for --jobs N: 'thread' (shared-memory, "
             "GIL-bound) or 'process' (supervised worker processes; "
             "batches ship whole segments, otherwise functions are "
             "shipped as text and spliced back)")
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-work-unit wall-clock deadline on the process tier "
             "before a worker is presumed hung and the pool restarted "
             "(default 60)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the fingerprint-keyed compile cache shared across "
             "batch segments")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="root of a persistent on-disk artifact cache shared across "
             "invocations and with repro-served (default: "
             "$REPRO_CACHE_DIR when set, else memory-only)")
    parser.add_argument(
        "--passes", default=None, metavar="SPEC",
        help="pass pipeline spec, e.g. 'canonicalize,cse' or "
             "'builtin.module(cse,func.func(canonicalize"
             "{max-iterations=10},licm))'")
    parser.add_argument(
        "--pipeline", default=None, choices=sorted(NAMED_PIPELINES),
        help="run a full compiler-model pipeline instead of --passes")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip IR verification before and after the pipeline")
    parser.add_argument(
        "--verify-each", action="store_true",
        help="verify the IR after every pass "
             "(VerifierInstrumentation)")
    parser.add_argument(
        "--lint", action="store_true",
        help="run the static lint rules on the final IR and fail on "
             "findings (see repro-lint)")
    parser.add_argument(
        "--lint-each", action="store_true",
        help="lint the anchored IR after every pass, naming the pass "
             "that introduced each finding (LintInstrumentation)")
    parser.add_argument(
        "--verify-diagnostics", action="store_true",
        help="check emitted diagnostics against '// expected-error "
             "{{...}}' comments in the input instead of printing IR")
    parser.add_argument(
        "--print-locations", action="store_true",
        help="print loc(...) trailers on every operation "
             "(-mlir-print-debuginfo analogue)")
    parser.add_argument(
        "--emit", default="generic", choices=("generic", "mlir"),
        help="output syntax: 'generic' (the classic printer order, "
             "default) or 'mlir' (upstream-MLIR generic form: regions "
             "and successors before the attribute dictionary, suitable "
             "for mlir-opt -allow-unregistered-dialect)")
    parser.add_argument(
        "--report", action="store_true",
        help="print the compile report (statistics, remarks) to stderr")
    parser.add_argument(
        "--timing", action="store_true",
        help="print a per-pass timing table to stderr "
             "(mlir-opt's -mlir-timing analogue)")
    parser.add_argument(
        "--print-ir-before", action="append", default=[], metavar="PASS",
        help="print the anchored IR to stderr before each run of PASS "
             "(repeatable)")
    parser.add_argument(
        "--print-ir-after", action="append", default=[], metavar="PASS",
        help="print the anchored IR to stderr after each run of PASS "
             "(repeatable)")
    parser.add_argument(
        "--print-ir-after-all", action="store_true",
        help="print the anchored IR to stderr after every pass")
    parser.add_argument(
        "--dump-pass-pipeline", action="store_true",
        help="print the canonical pipeline spec to stderr before running")
    parser.add_argument(
        "--allow-unregistered", action="store_true",
        help="accept operations not present in the operation registry")
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list registered passes with their option schemas and exit")
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _format_timing_table(timings) -> str:
    """Per-pass wall-time table in pass-execution order.

    Rows are keyed by pipeline position (``"3: canonicalize"``), so two
    instances of the same pass report separately.
    """
    total = sum(timings.values())
    width = 70
    lines = [
        "===" + "-" * (width - 6) + "===",
        "{:^{width}}".format("... Pass execution timing report ...",
                             width=width),
        "===" + "-" * (width - 6) + "===",
        f"  Total Execution Time: {total:.4f} seconds",
        "",
        "  ----Wall Time----  ----Name----",
    ]
    for name, seconds in timings.items():
        percent = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {seconds:9.4f} ({percent:5.1f}%)  {name}")
    lines.append(f"  {total:9.4f} (100.0%)  Total")
    return "\n".join(lines)


def _write_output(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


#: Segment separator for ``--split-input-file`` (the mlir-opt convention).
SPLIT_MARKER = "// -----"


def _split_segments(text: str) -> List[str]:
    """Split ``text`` on ``// -----`` separator lines."""
    segments: List[str] = []
    current: List[str] = []
    for line in text.splitlines(keepends=True):
        if line.strip() == SPLIT_MARKER:
            segments.append("".join(current))
            current = []
        else:
            current.append(line)
    segments.append("".join(current))
    return [segment for segment in segments if segment.strip()]


def _collect_segments(args) -> List[tuple]:
    """``(origin label, IR text)`` per module to compile, in input order."""
    segments: List[tuple] = []
    for path in args.inputs:
        text = _read_input(path)
        label = "<stdin>" if path == "-" else path
        if args.split_input_file:
            parts = _split_segments(text)
            for index, part in enumerate(parts):
                suffix = f" (segment {index + 1})" if len(parts) > 1 else ""
                segments.append((label + suffix, part))
        else:
            segments.append((label, text))
    return segments


#: ``// expected-error @+1 {{message}}`` — the mlir-opt test convention.
_EXPECTED_RE = re.compile(
    r"//\s*expected-(error|warning|remark)\s*(?:@([+-]\d+))?\s*\{\{(.*?)\}\}")

_SEVERITIES = {"error": Severity.ERROR, "warning": Severity.WARNING,
               "remark": Severity.REMARK}


def _collect_expected(text: str) -> List[Tuple[Severity, int, str]]:
    """``(severity, line, substring)`` per expected-* comment in ``text``.

    ``@+N`` / ``@-N`` anchor the expectation N lines below/above the
    comment; the default is the comment's own line.
    """
    expected: List[Tuple[Severity, int, str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _EXPECTED_RE.finditer(line):
            offset = int(match.group(2)) if match.group(2) else 0
            expected.append((_SEVERITIES[match.group(1)],
                             lineno + offset, match.group(3)))
    return expected


def _match_expected(expected, captured) -> List[str]:
    """Mismatch descriptions (empty = the segment's diagnostics verify).

    Each expectation consumes one captured diagnostic with the same
    severity, the same line and the expected text as a substring of the
    message; leftovers in either direction are mismatches.
    """
    unmatched = list(captured)
    problems: List[str] = []
    for severity, line, text in expected:
        for diagnostic in unmatched:
            if diagnostic.severity is severity and \
                    diagnostic.location.line == line and \
                    text in diagnostic.message:
                unmatched.remove(diagnostic)
                break
        else:
            problems.append(
                f"expected {severity} on line {line} was not produced: "
                f"{{{{{text}}}}}")
    for diagnostic in unmatched:
        problems.append(f"unexpected diagnostic: {diagnostic.render()}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: :func:`_main` plus graceful Ctrl-C.

    A ``KeyboardInterrupt`` anywhere in the run (including inside a
    worker-pool wait) unwinds through ``_main``'s ``finally`` — which
    terminates any process-tier workers, so an interrupt never orphans
    them — and exits with the conventional 130, no traceback.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("repro-opt: interrupted", file=sys.stderr)
        return 130


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_passes:
        print(describe_registered_passes())
        return 0
    if args.passes and args.pipeline:
        print("repro-opt: --passes and --pipeline are mutually exclusive",
              file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("repro-opt: --jobs must be >= 1", file=sys.stderr)
        return 2

    if args.passes:
        # Static spec validation (the pipeline checker): malformed specs
        # are reported with their character offset before any input IR
        # is read or parsed.
        problems = check_pass_pipeline(args.passes)
        if problems:
            for diagnostic in problems:
                print(f"repro-opt: {diagnostic.render()}", file=sys.stderr)
            return 2

    try:
        segments = _collect_segments(args)
    except OSError as exc:
        print(f"repro-opt: cannot read input: {exc}", file=sys.stderr)
        return 1

    engine = DiagnosticEngine() if args.verify_diagnostics else None

    try:
        if args.pipeline:
            manager = build_named_pipeline(args.pipeline, jobs=args.jobs)
        elif args.passes:
            manager = parse_pass_pipeline(args.passes)
            manager.jobs = args.jobs
        else:
            manager = None
    except ValueError as exc:
        print(f"repro-opt: {exc}", file=sys.stderr)
        return 2
    if manager is not None:
        manager.tier = args.parallel_tier
        if args.deadline is not None:
            manager.executor_options = ExecutorOptions(
                jobs=args.jobs, deadline=args.deadline)

    cache = None
    lint_each = None
    if manager is not None:
        if args.verify_each:
            manager.add_instrumentation(VerifierInstrumentation())
        if args.lint_each:
            lint_each = LintInstrumentation(engine=engine)
            manager.add_instrumentation(lint_each)
        try:
            # Selectors match the NAME pass executions carry, so resolve
            # aliases (`licm` -> `sycl-licm`) and reject typos up front.
            print_before = [resolve_pass_name(n)
                            for n in args.print_ir_before]
            print_after = True if args.print_ir_after_all else \
                [resolve_pass_name(n) for n in args.print_ir_after]
        except ValueError as exc:
            print(f"repro-opt: {exc}", file=sys.stderr)
            return 2
        if print_before or print_after:
            manager.add_instrumentation(IRPrintingInstrumentation(
                print_before=print_before,
                print_after=print_after))
        if args.dump_pass_pipeline:
            print(dump_pass_pipeline(manager), file=sys.stderr)
        # Whole segments are shipped to worker processes when the batch
        # can run hands-off: no instrumentation, no diagnostics
        # verification, no parent-side lint — workers parse, verify,
        # compile and print, the parent only stitches text.
        use_batch_process = (
            args.parallel_tier == "process" and args.jobs > 1
            and len(segments) > 1 and engine is None and not args.lint
            and not manager.instrumentations
            # Workers print the classic form; exported syntax must go
            # through the in-process printer.
            and args.emit == "generic")
        # An in-memory cache can only hit across segments of one
        # invocation, and an instrumented manager never consults any
        # cache (hits would swallow --verify-each / --print-ir output)
        # — create one only when it can actually serve, so --report
        # never shows a dead cache.  A disk tier (--cache-dir /
        # $REPRO_CACHE_DIR) changes the calculus: it hits across
        # *invocations*, so it pays even for a single segment.
        # (The process batch path dedupes identical segments itself.)
        cache_dir = args.cache_dir or cache_dir_from_env()
        if not args.no_cache and not manager.instrumentations \
                and not use_batch_process \
                and (len(segments) > 1 or cache_dir):
            disk = DiskCache(cache_dir) if cache_dir else None
            cache = CompileCache(disk=disk)
            manager.cache = cache
    else:
        use_batch_process = False

    # One report aggregates the whole batch: every segment runs the same
    # pipeline, so position-keyed timing buckets sum across segments.
    report = CompileReport() if manager is not None else None
    printed: List[str] = []
    #: Worst per-segment exit code (batch isolation: one broken segment
    #: fails the invocation, not the batch).
    exit_code = 0
    lint_findings = 0
    expectation_problems: List[str] = []
    batch = len(segments) > 1

    def compile_one(label: str,
                    text: str) -> Tuple[int, Optional[str]]:
        """Parse, verify, compile and print one segment in-process.

        Returns ``(exit code, printed text or None)``; failures are
        reported to stderr with their location, never raised — the
        caller decides whether a bad segment aborts (single input) or
        is isolated (batch).
        """
        nonlocal lint_findings
        try:
            # Parse under the real file name so every op carries a
            # file:line:col location diagnostics can point at.
            module = parse_module(
                text, allow_unregistered=args.allow_unregistered,
                filename=label.split(" (segment")[0])
        except ParseError as exc:
            print(f"repro-opt: {label}: parse error: {exc}",
                  file=sys.stderr)
            return 1, None
        try:
            if not args.no_verify:
                verify(module)
            if manager is not None:
                manager.run(module, report=report)
            if not args.no_verify:
                verify(module)
        except VerificationError as exc:
            print(f"repro-opt: {label}: verification failed: {exc}",
                  file=sys.stderr)
            return 1, None
        except ValueError as exc:
            print(f"repro-opt: {label}: {exc}", file=sys.stderr)
            return 2, None
        if args.lint:
            findings = run_lint(module,
                                am=_analysis_manager_of(manager))
            for diagnostic in findings:
                print(f"repro-opt: {label}: {diagnostic.render()}",
                      file=sys.stderr)
            lint_findings += len(findings)
        if args.emit == "mlir":
            from ..target import emit_mlir

            return 0, emit_mlir(
                module, print_locations=args.print_locations) + "\n"
        return 0, (Printer(print_locations=args.print_locations)
                   .print_module(module) + "\n")

    try:
        if use_batch_process:
            try:
                printed, exit_code = _run_batch_process(
                    args, manager, segments, report, compile_one)
            except TierError as exc:
                # The tier itself cannot make progress (pool unbuildable,
                # rebuild budget exhausted): degrade the whole batch to
                # the in-process path below.
                report.remark(
                    f"process-tier: degraded to in-process batch: {exc}")
                report.add_statistic("process-tier", "degraded", 1)
                use_batch_process = False
                printed = []
                exit_code = 0
        if not use_batch_process:
            for label, text in segments:
                if engine is not None:
                    # --verify-diagnostics: capture everything the
                    # segment emits (verifier, lint) and check it
                    # against the expected-* comments; broken IR is the
                    # expected case here, so verification failures do
                    # not abort the batch.
                    try:
                        module = parse_module(
                            text,
                            allow_unregistered=args.allow_unregistered,
                            filename=label.split(" (segment")[0])
                    except ParseError as exc:
                        print(f"repro-opt: {label}: parse error: {exc}",
                              file=sys.stderr)
                        return 1
                    with engine.capture() as captured:
                        broken = False
                        if not args.no_verify:
                            broken = bool(
                                verify_with_diagnostics(module, engine))
                        if manager is not None and not broken:
                            try:
                                manager.run(module, report=report)
                            except ValueError as exc:
                                print(f"repro-opt: {label}: {exc}",
                                      file=sys.stderr)
                                return 2
                            if not args.no_verify:
                                verify_with_diagnostics(module, engine)
                        if args.lint and not broken:
                            run_lint(module,
                                     am=_analysis_manager_of(manager),
                                     engine=engine)
                    expectation_problems.extend(
                        f"{label}: {problem}" for problem in
                        _match_expected(_collect_expected(text), captured))
                    continue
                rc, out = compile_one(label, text)
                if rc and not batch:
                    return rc
                if out is None:
                    # Batch isolation: a broken segment reports, leaves
                    # a placeholder so output stays aligned with input
                    # order, and does not abort the rest of the batch.
                    printed.append(f"// {label}: FAILED\n")
                    exit_code = max(exit_code, rc)
                else:
                    printed.append(out)
    finally:
        if manager is not None:
            manager.close()

    if lint_each is not None and engine is None:
        for pass_name, diagnostic in lint_each.findings:
            print(f"repro-opt: after pass '{pass_name}': "
                  f"{diagnostic.render()}", file=sys.stderr)
        lint_findings += len(lint_each.findings)

    if engine is not None:
        for problem in expectation_problems:
            print(f"repro-opt: {problem}", file=sys.stderr)
        return 1 if expectation_problems else 0

    _write_output(args.output, (SPLIT_MARKER + "\n").join(printed))
    if args.report and report is not None:
        print(report.summary(), file=sys.stderr)
        if cache is not None:
            stats = cache.describe()
            print(f"compile cache: {stats['hits']} hits, "
                  f"{stats['misses']} misses, {stats['entries']} entries",
                  file=sys.stderr)
            disk_stats = stats.get("disk")
            if disk_stats is not None:
                print(f"disk cache: {disk_stats['hits']} hits, "
                      f"{disk_stats['misses']} misses, "
                      f"{disk_stats['evictions']} evictions, "
                      f"{disk_stats['corrupt_recoveries']} corrupt "
                      f"recoveries, {disk_stats['entries']} entries, "
                      f"{disk_stats['bytes_on_disk']} bytes on disk",
                      file=sys.stderr)
        if manager is not None:
            print(f"analysis manager: {manager.analysis_manager.describe()}",
                  file=sys.stderr)
    if args.timing and report is not None:
        print(_format_timing_table(report.timings), file=sys.stderr)
    return max(exit_code, 1 if lint_findings else 0)


def _run_batch_process(args, manager, segments, report,
                       compile_one) -> Tuple[List[str], int]:
    """Compile batch segments as whole-module units on the process tier.

    Workers parse, verify, compile and print; the parent stitches the
    printed text back in input order (no splice, no parent-side parse).
    Identical segment texts are deduplicated — the first occurrence is
    shipped, duplicates reuse its result (the batch cache, moved to the
    dispatch layer).  A segment whose worker fails deterministically
    (parse error, verification failure, pass error) degrades to
    ``compile_one`` in the parent, which reports the error with native
    semantics and yields the batch-isolation placeholder; supervised
    faults (crash/hang/corrupt/transient) are retried per the executor
    policy.  Raises :class:`TierError` only when the tier as a whole
    cannot make progress.
    """
    spec = f"pipeline:{args.pipeline}" if args.pipeline \
        else dump_pass_pipeline(manager)
    units: List[WorkUnit] = []
    first_uid: dict = {}
    alias: dict = {}
    for uid, (label, text) in enumerate(segments):
        fingerprint = text_fingerprint(text)
        if fingerprint in first_uid:
            alias[uid] = first_uid[fingerprint]
            continue
        first_uid[fingerprint] = uid
        units.append(WorkUnit(
            uid=uid, label=label, kind="segment", text=text, spec=spec,
            verify=not args.no_verify,
            print_locations=args.print_locations,
            filename=label.split(" (segment")[0]))

    fallback_rcs: dict = {}
    fallback_texts: dict = {}

    def serial_fallback(unit: WorkUnit, attempts: int,
                        events: List[str]) -> WorkResult:
        rc, out = compile_one(unit.label, unit.text)
        fallback_rcs[unit.uid] = rc
        fallback_texts[unit.uid] = out
        return WorkResult(unit=unit, text=out, attempts=max(1, attempts),
                          degraded=True, events=events)

    executor = manager.process_tier()
    stats_before = dict(executor.stats)
    events_before = len(executor.events)
    results = executor.run_units(units, validate_segment_result,
                                 serial_fallback)

    printed: List[str] = []
    exit_code = 0
    for uid, (label, text) in enumerate(segments):
        result = results.get(alias.get(uid, uid))
        if result is None:  # pragma: no cover - run_units returns all
            printed.append(f"// {label}: FAILED\n")
            exit_code = max(exit_code, 1)
            continue
        rc = fallback_rcs.get(result.unit.uid, 0)
        if result.text is None:
            printed.append(f"// {label}: FAILED\n")
            exit_code = max(exit_code, rc if rc else 1)
        else:
            printed.append(result.text)
            exit_code = max(exit_code, rc)

    # Fold the workers' reports and the supervision record into the
    # batch report, in input order, so --report reads like a serial run
    # plus a recovery log.
    report.add_statistic("process-tier", "segments", len(units))
    if alias:
        report.add_statistic("process-tier", "deduped-segments",
                             len(alias))
    for unit in units:
        result = results.get(unit.uid)
        if result is None:
            continue
        for pass_name, name, value in result.statistics:
            report.add_statistic(pass_name, name, value)
        report.remarks.extend(result.remarks)
        for key, seconds in result.timings.items():
            report.timings[key] = report.timings.get(key, 0.0) + seconds
        for event in result.events:
            report.remark(f"process-tier: {event}")
    for event in executor.events[events_before:]:
        report.remark(f"process-tier: {event}")
    for name, value in executor.stats.items():
        delta = value - stats_before.get(name, 0)
        if delta:
            report.add_statistic("process-tier", name, delta)
    return printed, exit_code


def _analysis_manager_of(manager):
    """The pass manager's analysis manager (None without a pipeline)."""
    return manager.analysis_manager if manager is not None else None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
