"""``repro-opt`` — an ``mlir-opt`` analogue for the reproduction's IR.

Reads textual IR (file or stdin), verifies it, runs either a
comma-separated pass pipeline (``--passes canonicalize,cse``) or one of the
paper's full compiler-model pipelines (``--pipeline sycl-mlir``), verifies
the result, and prints the optimized IR.  The compile report (statistics
and remarks collected by the passes) can be dumped with ``--report``.

This is the workflow MLIR passes are developed against: every transform
gets textual before/after test cases runnable through this driver (see
``docs/textual_ir.md`` and the FileCheck-lite helper in ``tests/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..dialects import all_dialects  # noqa: F401 - registers ops and types
from ..ir import ParseError, Printer, VerificationError, parse_module, verify
from ..transforms.pipelines import (
    NAMED_PIPELINES,
    available_passes,
    build_named_pipeline,
    parse_pass_pipeline,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="Parse, optimize and re-print textual IR.")
    parser.add_argument(
        "input", nargs="?", default="-",
        help="input IR file, or '-' for stdin (default)")
    parser.add_argument(
        "-o", "--output", default="-",
        help="output file, or '-' for stdout (default)")
    parser.add_argument(
        "--passes", default=None, metavar="SPEC",
        help="comma-separated pass pipeline, e.g. 'canonicalize,cse,licm'")
    parser.add_argument(
        "--pipeline", default=None, choices=sorted(NAMED_PIPELINES),
        help="run a full compiler-model pipeline instead of --passes")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip IR verification before and after the pipeline")
    parser.add_argument(
        "--report", action="store_true",
        help="print the compile report (statistics, remarks) to stderr")
    parser.add_argument(
        "--timing", action="store_true",
        help="print a per-pass timing table to stderr "
             "(mlir-opt's -mlir-timing analogue)")
    parser.add_argument(
        "--allow-unregistered", action="store_true",
        help="accept operations not present in the operation registry")
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list registered pass names and exit")
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _format_timing_table(timings) -> str:
    """Per-pass wall-time table in pass-execution order."""
    total = sum(timings.values())
    width = 70
    lines = [
        "===" + "-" * (width - 6) + "===",
        "{:^{width}}".format("... Pass execution timing report ...",
                             width=width),
        "===" + "-" * (width - 6) + "===",
        f"  Total Execution Time: {total:.4f} seconds",
        "",
        "  ----Wall Time----  ----Name----",
    ]
    for name, seconds in timings.items():
        percent = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {seconds:9.4f} ({percent:5.1f}%)  {name}")
    lines.append(f"  {total:9.4f} (100.0%)  Total")
    return "\n".join(lines)


def _write_output(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_passes:
        print("\n".join(available_passes()))
        return 0
    if args.passes and args.pipeline:
        print("repro-opt: --passes and --pipeline are mutually exclusive",
              file=sys.stderr)
        return 2

    try:
        text = _read_input(args.input)
    except OSError as exc:
        print(f"repro-opt: cannot read {args.input!r}: {exc}", file=sys.stderr)
        return 1

    try:
        module = parse_module(text, allow_unregistered=args.allow_unregistered)
    except ParseError as exc:
        print(f"repro-opt: parse error: {exc}", file=sys.stderr)
        return 1

    try:
        if not args.no_verify:
            verify(module)
        if args.pipeline:
            manager = build_named_pipeline(args.pipeline)
        elif args.passes:
            manager = parse_pass_pipeline(args.passes)
        else:
            manager = None
        report = manager.run(module) if manager is not None else None
        if not args.no_verify:
            verify(module)
    except VerificationError as exc:
        print(f"repro-opt: verification failed: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"repro-opt: {exc}", file=sys.stderr)
        return 2

    _write_output(args.output, Printer().print_module(module) + "\n")
    if args.report and report is not None:
        print(report.summary(), file=sys.stderr)
    if args.timing and report is not None:
        print(_format_timing_table(report.timings), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
