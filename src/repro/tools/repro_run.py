"""``repro-run`` — execute textual IR through the interpreter.

The execution sibling of ``repro-opt``: parses a module, optionally runs
a pass pipeline over it, then *executes* a named entry function through
:mod:`repro.interp` and prints the results.

* Ordinary functions run once with CLI-provided / synthesized scalar and
  memref arguments.
* Kernel functions (taking a ``sycl::item``/``nd_item``) are launched
  over ``--global-size`` (and ``--local-size`` for work-group semantics)
  with accessor arguments bound to deterministically filled buffers.

Useful flags::

    repro-run k.mlir --entry gemm --global-size 8x8 --local-size 4x4 \\
        --buffer A=8x8 --buffer B=8x8 --buffer C=8x8 \\
        --pipeline sycl-mlir --print-buffers --cost-report

``--tier`` selects the execution tier (``auto`` by default: vectorized
NumPy execution when the kernel is divergence-free, the compile-to-Python
JIT otherwise, the scalar interpreter as the last resort); fallback
decisions are reported on stderr and the tier that actually ran is shown
in the output header.  ``--list-tiers`` enumerates the registry.

``--arg name=value`` sets scalar arguments by name (block-argument name
hints; ``argN`` positions work too).  ``--cost-report`` prints a roofline
estimate of the executed operation/byte counts against a
:class:`repro.runtime.DeviceSpec` (``--device`` selects the modelled
GPU), so the analytical device model participates in every run.

See ``docs/interpreter.md`` for the execution model and its caveats.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from ..dialects import all_dialects  # noqa: F401 - registers ops and types
from ..dialects.func import FuncOp
from ..ir import ParseError, VerificationError, parse_module, verify
from ..interp.differential import (
    ExecutionSpec,
    _executable_functions,
    synthesize_spec,
)
from ..interp.engine import ExecutionEngine, registered_executors
from ..interp.memory import InterpreterError, TrapError
from ..runtime.device import (
    DeviceSpec,
    intel_data_center_gpu_max_1100,
    small_test_device,
)
from ..transforms.compile_cache import CompileCache
from ..transforms.disk_cache import DiskCache, cache_dir_from_env
from ..transforms.pipelines import (
    NAMED_PIPELINES,
    build_named_pipeline,
    parse_pass_pipeline,
)
from .repro_opt import _read_input

DEVICES = {
    "max1100": intel_data_center_gpu_max_1100,
    "small": small_test_device,
}


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Parse, optionally optimize, then execute textual IR "
                    "through the IR interpreter.")
    parser.add_argument(
        "input", nargs="?", default="-",
        help="input IR file, or '-' for stdin (default)")
    parser.add_argument(
        "--entry", default=None, metavar="NAME",
        help="function to execute (default: the only executable function)")
    parser.add_argument(
        "--list-functions", action="store_true",
        help="list the module's functions with their signatures and exit")
    parser.add_argument(
        "--passes", default=None, metavar="SPEC",
        help="run a pass pipeline spec before executing")
    parser.add_argument(
        "--pipeline", default=None, choices=sorted(NAMED_PIPELINES),
        help="run a full compiler-model pipeline before executing")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for func.func-anchored pipelines (default 1)")
    parser.add_argument(
        "--arg", action="append", default=[], metavar="NAME=VALUE",
        help="scalar argument value by name (repeatable); unnamed "
             "arguments are addressable as arg0, arg1, ...")
    parser.add_argument(
        "--global-size", default=None, metavar="NxM",
        help="global iteration space for kernel entries (e.g. 8x8)")
    parser.add_argument(
        "--local-size", default=None, metavar="NxM",
        help="work-group size (enables barriers / local memory)")
    parser.add_argument(
        "--buffer", action="append", default=[], metavar="NAME=NxM",
        help="shape of the buffer backing accessor/memref argument NAME "
             "(repeatable)")
    parser.add_argument(
        "--print-buffers", action="store_true",
        help="print the final contents of every buffer/memref argument")
    parser.add_argument(
        "--cost-report", action="store_true",
        help="print a roofline estimate of the execution against the "
             "modelled device (see --device)")
    parser.add_argument(
        "--device", default="max1100", choices=sorted(DEVICES),
        help="device model used by --cost-report (default: max1100)")
    parser.add_argument(
        "--tier", default="auto", metavar="TIER",
        help="execution tier: auto (default), interp, jit, vector, or "
             "any registered executor (see --list-tiers); non-interp "
             "tiers fall back to the interpreter when a kernel is "
             "unsupported")
    parser.add_argument(
        "--list-tiers", action="store_true",
        help="list the registered execution tiers and exit")
    parser.add_argument(
        "--max-steps", type=int, default=10_000_000,
        help="interpreter step budget (default 10M ops)")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip IR verification before executing")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="root of a persistent on-disk compile cache shared with "
             "repro-opt and repro-served (default: $REPRO_CACHE_DIR "
             "when set, else no caching)")
    parser.add_argument(
        "--allow-unregistered", action="store_true",
        help="accept operations not present in the operation registry")
    return parser


def _parse_extents(text: str, what: str) -> Tuple[int, ...]:
    try:
        extents = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise ValueError(f"malformed {what} {text!r}; expected e.g. 8x8")
    if not extents or any(e <= 0 for e in extents):
        raise ValueError(f"malformed {what} {text!r}; extents must be >= 1")
    return extents


def _parse_scalar(text: str):
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        return float(text)


def _split_assignment(text: str, what: str) -> Tuple[str, str]:
    name, separator, value = text.partition("=")
    if not separator or not name:
        raise ValueError(f"malformed {what} {text!r}; expected NAME=VALUE")
    return name, value


def _build_spec(args) -> ExecutionSpec:
    spec = ExecutionSpec()
    if args.global_size:
        spec.global_size = _parse_extents(args.global_size, "--global-size")
    if args.local_size:
        spec.local_size = _parse_extents(args.local_size, "--local-size")
    for assignment in args.buffer:
        name, value = _split_assignment(assignment, "--buffer")
        spec.buffers[name] = _parse_extents(value, "--buffer shape")
    for assignment in args.arg:
        name, value = _split_assignment(assignment, "--arg")
        try:
            spec.scalars[name] = _parse_scalar(value)
        except ValueError:
            raise ValueError(f"malformed --arg value {value!r}")
    return spec


def _signature(function: FuncOp) -> str:
    params = ", ".join(
        # Unnamed arguments print as argN — the same names --arg/--buffer
        # accept.
        f"%{arg.name_hint or f'arg{i}'}: {arg.type}"
        for i, arg in enumerate(function.arguments))
    results = ", ".join(str(t) for t in function.function_type.results)
    kernel = "  [kernel]" if function.is_kernel() else ""
    return f"@{function.sym_name}({params}) -> ({results}){kernel}"


def _format_values(values: List[object], limit: int = 32) -> str:
    shown = values[:limit]
    body = ", ".join(
        f"{v:.6g}" if isinstance(v, float) else str(v) for v in shown)
    suffix = f", ... ({len(values)} values)" if len(values) > limit else ""
    return f"[{body}{suffix}]"


def _cost_report(counters, spec: DeviceSpec, kernel_launches: int) -> str:
    """Roofline estimate: executed work against the device's peaks."""
    ops = counters.ops
    bytes_moved = counters.bytes_read + counters.bytes_written
    compute_s = ops / spec.peak_ops_per_second()
    memory_s = bytes_moved / spec.global_bytes_per_second()
    launch_s = kernel_launches * spec.launch_overhead_us * 1e-6
    estimate_s = max(compute_s, memory_s) + launch_s
    bound = "compute" if compute_s >= memory_s else "memory"
    lines = [
        f"cost report (device: {spec.name})",
        f"  ops executed:        {ops}",
        f"  loads / stores:      {counters.loads} / {counters.stores}",
        f"  bytes moved:         {bytes_moved}",
        f"  barriers:            {counters.barriers}",
        f"  work items:          {counters.work_items}",
        f"  peak ops/s:          {spec.peak_ops_per_second():.3e}",
        f"  peak bytes/s:        {spec.global_bytes_per_second():.3e}",
        f"  compute time:        {compute_s:.3e} s",
        f"  memory time:         {memory_s:.3e} s",
        f"  launch overhead:     {launch_s:.3e} s",
        f"  roofline estimate:   {estimate_s:.3e} s ({bound}-bound)",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: :func:`_main` plus graceful Ctrl-C.

    Interrupts unwind through ``_main``'s cleanup (worker pools are
    terminated, never waited on) and exit with the conventional 130,
    no traceback.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("repro-run: interrupted", file=sys.stderr)
        return 130


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_tiers:
        print("auto")
        for name in registered_executors():
            print(name)
        return 0

    if args.passes and args.pipeline:
        print("repro-run: --passes and --pipeline are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        spec = _build_spec(args)
    except ValueError as exc:
        print(f"repro-run: {exc}", file=sys.stderr)
        return 2

    try:
        text = _read_input(args.input)
    except OSError as exc:
        print(f"repro-run: cannot read input: {exc}", file=sys.stderr)
        return 1
    try:
        module = parse_module(text,
                              allow_unregistered=args.allow_unregistered)
    except ParseError as exc:
        print(f"repro-run: parse error: {exc}", file=sys.stderr)
        return 1

    try:
        if args.pipeline:
            manager = build_named_pipeline(args.pipeline, jobs=args.jobs)
        elif args.passes:
            manager = parse_pass_pipeline(args.passes)
            manager.jobs = args.jobs
        else:
            manager = None
    except ValueError as exc:
        print(f"repro-run: {exc}", file=sys.stderr)
        return 2
    # Optimize-before-execute pays disk-cache dividends: the pipeline
    # cost of a hot kernel is skipped entirely on the second run.
    cache_dir = args.cache_dir or cache_dir_from_env()
    if manager is not None and cache_dir:
        manager.cache = CompileCache(disk=DiskCache(cache_dir))

    try:
        if not args.no_verify:
            verify(module)
        if manager is not None:
            try:
                manager.run(module)
            finally:
                manager.close()
            if not args.no_verify:
                verify(module)
    except VerificationError as exc:
        print(f"repro-run: verification failed: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # Pass misconfiguration surfaced at run time (same contract as
        # repro-opt's pipeline stage): usage error.
        print(f"repro-run: {exc}", file=sys.stderr)
        return 2

    # Functions are resolved after the pipeline ran, so entries the
    # pipeline created are selectable and --list-functions reflects the
    # module that will actually execute.
    functions = _executable_functions(module)
    if args.list_functions:
        for function in functions:
            print(_signature(function))
        return 0

    if args.entry:
        entry = next((f for f in functions if f.sym_name == args.entry),
                     None)
        if entry is None:
            names = ", ".join(f.sym_name for f in functions) or "none"
            print(f"repro-run: no function named '{args.entry}' "
                  f"(available: {names})", file=sys.stderr)
            return 2
    elif len(functions) == 1:
        entry = functions[0]
    else:
        print("repro-run: --entry is required when the module defines "
              f"{len(functions)} functions", file=sys.stderr)
        return 2

    try:
        engine = ExecutionEngine(module, tier=args.tier,
                                 max_steps=args.max_steps)
    except ValueError as exc:
        # Unknown --tier name: usage error.
        print(f"repro-run: {exc}", file=sys.stderr)
        return 2
    try:
        resolved = synthesize_spec(entry, spec)
        execution = engine.execute(entry, resolved)
    except (InterpreterError, TrapError, ValueError) as exc:
        # ValueError covers runtime-object validation (e.g. an NDRange
        # whose local rank mismatches --global-size); the exit-code
        # contract is 1 for any execution failure.
        print(f"repro-run: execution failed: {exc}", file=sys.stderr)
        return 1

    for remark in engine.remarks:
        print(f"repro-run: {remark}", file=sys.stderr)

    header = f"@{execution.name}"
    if execution.kind == "kernel":
        size = "x".join(str(e) for e in resolved.global_size)
        local = ("x".join(str(e) for e in resolved.local_size)
                 if resolved.local_size else "none")
        header += f" launched over {size} (local: {local})"
    header += f" [tier: {execution.tier}]"
    print(header)
    for index, value in enumerate(execution.results):
        shown = f"{value:.6g}" if isinstance(value, float) else value
        print(f"result[{index}] = {shown}")
    if args.print_buffers:
        for name, values in execution.memory.items():
            print(f"{name} = {_format_values(values)}")

    if args.cost_report:
        from ..interp.memory import ExecutionCounters

        counters = ExecutionCounters(**execution.counters)
        launches = 1 if execution.kind == "kernel" else 0
        print(_cost_report(counters, DEVICES[args.device](), launches),
              file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
