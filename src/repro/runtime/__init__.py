"""SYCL runtime substrate: buffers, accessors, index spaces and devices.

These objects are no longer purely descriptive: the IR interpreter
(:mod:`repro.interp`) binds kernel accessor arguments to
:class:`Buffer`/:class:`Accessor` pairs (moving data through the same
host<->device transfer accounting), launches over :class:`Range` /
:class:`NDRange` iteration spaces, and ``repro-run --cost-report`` turns
executed-op counts into a roofline estimate against a :class:`DeviceSpec`.
"""

from .accessor import (
    ACCESS_MODES,
    Accessor,
    KernelArgument,
    LocalAccessor,
    is_accessor,
    is_scalar_argument,
)
from .buffer import Buffer, USMAllocation, USMAllocator
from .device import (
    Device,
    DeviceSpec,
    intel_data_center_gpu_max_1100,
    small_test_device,
)
from .ndrange import ID, NDRange, Range, delinearize, linearize

__all__ = [
    "ACCESS_MODES", "Accessor", "KernelArgument", "LocalAccessor",
    "is_accessor", "is_scalar_argument",
    "Buffer", "USMAllocation", "USMAllocator",
    "Device", "DeviceSpec", "intel_data_center_gpu_max_1100",
    "small_test_device",
    "ID", "NDRange", "Range", "delinearize", "linearize",
]
