"""Host-side accessor objects.

An accessor requests access to a buffer from within a command group; it
carries the dynamic information described in Section II-A of the paper: the
data pointer, the full (memory) range, an access range and an offset — plus
static information (access mode, target).  Ranged accessors view only part
of a buffer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

from .buffer import Buffer, USMAllocation
from .ndrange import ID, Range

#: Valid accessor modes (subset of SYCL 2020).
ACCESS_MODES = ("read", "write", "read_write")

_accessor_ids = itertools.count()


@dataclass
class Accessor:
    """Device accessor created inside a command group."""

    buffer: Buffer
    mode: str = "read_write"
    access_range: Optional[Range] = None
    offset: Optional[ID] = None
    name: Optional[str] = None
    accessor_id: int = field(default_factory=lambda: next(_accessor_ids))

    def __post_init__(self):
        if self.mode not in ACCESS_MODES:
            raise ValueError(f"invalid access mode {self.mode!r}")
        if self.access_range is not None and not isinstance(self.access_range, Range):
            self.access_range = Range(self.access_range)
        if self.offset is not None and not isinstance(self.offset, ID):
            self.offset = ID(self.offset)
        if self.name is None:
            self.name = f"acc_{self.buffer.name}"

    # ------------------------------------------------------------------
    @property
    def is_ranged(self) -> bool:
        return self.access_range is not None or self.offset is not None

    @property
    def dimensions(self) -> int:
        return len(self.buffer.shape)

    @property
    def mem_range(self) -> Range:
        return Range(self.buffer.shape)

    def effective_range(self) -> Range:
        return self.access_range or self.mem_range

    def effective_offset(self) -> Tuple[int, ...]:
        if self.offset is None:
            return tuple(0 for _ in self.buffer.shape)
        return self.offset.indices

    @property
    def is_read_only(self) -> bool:
        return self.mode == "read"

    @property
    def writes(self) -> bool:
        return self.mode in ("write", "read_write")

    def element_size(self) -> int:
        return int(self.buffer.dtype.itemsize)

    def __repr__(self) -> str:
        return (f"<Accessor {self.name} mode={self.mode} "
                f"range={self.effective_range()}>")


@dataclass
class LocalAccessor:
    """Work-group local memory allocation request (``local_accessor``)."""

    shape: Tuple[int, ...]
    dtype: type = np.float32
    name: Optional[str] = None
    accessor_id: int = field(default_factory=lambda: next(_accessor_ids))

    def __post_init__(self):
        if isinstance(self.shape, (int, np.integer)):
            self.shape = (int(self.shape),)
        else:
            self.shape = tuple(int(s) for s in self.shape)
        if self.name is None:
            self.name = f"local{self.accessor_id}"

    @property
    def dimensions(self) -> int:
        return len(self.shape)

    def size_bytes(self) -> int:
        total = 1
        for s in self.shape:
            total *= s
        return total * np.dtype(self.dtype).itemsize

    def __repr__(self) -> str:
        return f"<LocalAccessor {self.name} shape={self.shape}>"


#: Kernel arguments may be accessors, local accessors, USM allocations or
#: plain scalars.
KernelArgument = Union[Accessor, LocalAccessor, USMAllocation, int, float, bool]


def is_accessor(value) -> bool:
    return isinstance(value, Accessor)


def is_scalar_argument(value) -> bool:
    return isinstance(value, (int, float, bool, np.integer, np.floating))
