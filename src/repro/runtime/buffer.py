"""SYCL buffers and USM allocations (host side).

A :class:`Buffer` owns a multi-dimensional array and tracks where the valid
copy lives (host or device) so the scheduler can insert data movement, just
like the buffer/accessor model described in Section II-A of the paper.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .ndrange import Range

_buffer_ids = itertools.count()


class Buffer:
    """A multi-dimensional data container managed by the SYCL runtime."""

    def __init__(self, data: Union[np.ndarray, Sequence[int], Range],
                 dtype=np.float32, name: Optional[str] = None):
        if isinstance(data, np.ndarray):
            self._host_data = np.array(data, copy=True)
        else:
            shape = tuple(data) if not isinstance(data, Range) else data.sizes
            self._host_data = np.zeros(shape, dtype=dtype)
        self.buffer_id = next(_buffer_ids)
        self.name = name or f"buffer{self.buffer_id}"
        #: Device-side copy (lazily created by the scheduler).
        self._device_data: Optional[np.ndarray] = None
        #: Which copy is up to date: "host", "device" or "both".
        self._valid_on = "host"
        #: Bytes moved host<->device, tracked for the transfer model.
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        #: True when the data is known constant (e.g. a filter); used by the
        #: host-device constant propagation modelling.
        self.is_constant = False

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._host_data.shape)

    @property
    def dtype(self):
        return self._host_data.dtype

    @property
    def range(self) -> Range:
        return Range(self.shape)

    def size(self) -> int:
        return int(self._host_data.size)

    def size_bytes(self) -> int:
        return int(self._host_data.nbytes)

    def mark_constant(self) -> "Buffer":
        """Declare the buffer contents immutable (e.g. ``const`` filter data)."""
        self.is_constant = True
        return self

    # ------------------------------------------------------------------
    # Host access
    # ------------------------------------------------------------------
    def host_array(self) -> np.ndarray:
        """Host view of the data, synchronizing from the device if needed."""
        self.sync_to_host()
        return self._host_data

    def write_host(self, values: np.ndarray) -> None:
        array = np.asarray(values, dtype=self._host_data.dtype)
        self._host_data[...] = array.reshape(self._host_data.shape)
        self._valid_on = "host"

    # ------------------------------------------------------------------
    # Device access (used by the scheduler / simulator)
    # ------------------------------------------------------------------
    def device_array(self, writable: bool) -> np.ndarray:
        """Device view of the data, transferring from the host if needed."""
        if self._device_data is None:
            self._device_data = np.array(self._host_data, copy=True)
            self.bytes_to_device += self.size_bytes()
        elif self._valid_on == "host":
            self._device_data[...] = self._host_data
            self.bytes_to_device += self.size_bytes()
        self._valid_on = "device" if writable else "both"
        return self._device_data

    def sync_to_host(self) -> None:
        if self._valid_on == "device" and self._device_data is not None:
            self._host_data[...] = self._device_data
            self.bytes_to_host += self.size_bytes()
            self._valid_on = "both"

    def __repr__(self) -> str:
        return f"<Buffer {self.name} shape={self.shape} dtype={self.dtype}>"


class USMAllocation:
    """A unified-shared-memory allocation (``malloc_shared``-style).

    USM pointers are manipulated directly by the user; the runtime does not
    track dependencies for them (Section II-A), which is modelled by the
    queue treating USM kernel arguments as always-available device memory.
    """

    def __init__(self, shape: Union[int, Sequence[int]], dtype=np.float32,
                 kind: str = "shared", name: Optional[str] = None):
        if isinstance(shape, int):
            shape = (shape,)
        if kind not in ("shared", "device", "host"):
            raise ValueError(f"invalid USM kind {kind!r}")
        self.kind = kind
        self.data = np.zeros(tuple(shape), dtype=dtype)
        self.name = name or f"usm{next(_buffer_ids)}"
        self.freed = False

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def dtype(self):
        return self.data.dtype

    def size_bytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:
        return f"<USMAllocation {self.name} kind={self.kind} shape={self.shape}>"


class USMAllocator:
    """Factory for USM allocations bound to a queue/device."""

    def __init__(self):
        self.allocations = []

    def malloc_shared(self, shape, dtype=np.float32) -> USMAllocation:
        allocation = USMAllocation(shape, dtype, "shared")
        self.allocations.append(allocation)
        return allocation

    def malloc_device(self, shape, dtype=np.float32) -> USMAllocation:
        allocation = USMAllocation(shape, dtype, "device")
        self.allocations.append(allocation)
        return allocation

    def malloc_host(self, shape, dtype=np.float32) -> USMAllocation:
        allocation = USMAllocation(shape, dtype, "host")
        self.allocations.append(allocation)
        return allocation

    def free(self, allocation: USMAllocation) -> None:
        allocation.freed = True

    def live_allocations(self):
        return [a for a in self.allocations if not a.freed]
