"""Simulated device descriptions.

The paper evaluates on an Intel Data Center GPU Max 1100.  We cannot run on
that hardware, so the device here is a parameterized analytical model whose
parameters are set to publicly-known characteristics of that GPU class; the
GPU cost model in :mod:`repro.execution.gpu_model` turns per-work-item event
counts into modelled kernel times using these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeviceSpec:
    """Parameters of the simulated accelerator."""

    name: str = "Simulated GPU"
    #: Number of compute units (Xe cores / EU groups) executing in parallel.
    compute_units: int = 56
    #: SIMD width of one hardware thread (sub-group size).
    simd_width: int = 16
    #: Clock frequency in GHz.
    clock_ghz: float = 1.55
    #: Arithmetic operations per compute unit per clock (per SIMD lane set).
    ops_per_clock_per_cu: float = 128.0
    #: Sustainable global-memory bandwidth in GiB/s.
    global_bandwidth_gib: float = 1100.0
    #: Global memory transaction granularity in bytes (cache-line).
    transaction_bytes: int = 64
    #: Additional latency per uncoalesced transaction, cycles.
    global_latency_cycles: float = 400.0
    #: Work-group local (shared) memory bandwidth in GiB/s (aggregate).
    local_bandwidth_gib: float = 8000.0
    #: Local memory size per work-group in KiB.
    local_memory_kib: int = 128
    #: Barrier cost in cycles per work-group.
    barrier_cycles: float = 40.0
    #: Constant-memory / replicated scalar access cost factor relative to a
    #: register access (used for host-propagated constant buffers).
    constant_access_factor: float = 0.05
    #: Host-side overhead per kernel launch, microseconds.
    launch_overhead_us: float = 8.0
    #: Additional launch overhead per kernel argument, microseconds.
    per_argument_overhead_us: float = 0.15
    #: Device global memory size in GiB (for completeness / validation).
    global_memory_gib: int = 48

    def peak_ops_per_second(self) -> float:
        return self.compute_units * self.ops_per_clock_per_cu * self.clock_ghz * 1e9

    def global_bytes_per_second(self) -> float:
        return self.global_bandwidth_gib * (1 << 30)

    def local_bytes_per_second(self) -> float:
        return self.local_bandwidth_gib * (1 << 30)


def intel_data_center_gpu_max_1100() -> DeviceSpec:
    """Device model approximating the paper's evaluation GPU."""
    return DeviceSpec(
        name="Intel Data Center GPU Max 1100 (modelled)",
        compute_units=56,
        simd_width=16,
        clock_ghz=1.55,
        ops_per_clock_per_cu=128.0,
        global_bandwidth_gib=1100.0,
        transaction_bytes=64,
        global_latency_cycles=400.0,
        local_bandwidth_gib=9000.0,
        local_memory_kib=128,
        barrier_cycles=40.0,
        launch_overhead_us=8.0,
        per_argument_overhead_us=0.15,
        global_memory_gib=48,
    )


def small_test_device() -> DeviceSpec:
    """A tiny device used in unit tests (keeps modelled times readable)."""
    return DeviceSpec(
        name="Unit-test GPU",
        compute_units=4,
        simd_width=4,
        clock_ghz=1.0,
        ops_per_clock_per_cu=4.0,
        global_bandwidth_gib=16.0,
        local_bandwidth_gib=128.0,
        launch_overhead_us=1.0,
    )


@dataclass
class Device:
    """A runtime device handle (wraps the spec, tracks accumulated stats)."""

    spec: DeviceSpec = field(default_factory=intel_data_center_gpu_max_1100)

    @property
    def name(self) -> str:
        return self.spec.name

    def is_gpu(self) -> bool:
        return True
