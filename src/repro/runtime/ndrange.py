"""Host-side index space classes: ``range``, ``id``, ``nd_range`` (SYCL 2020)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union

RangeLike = Union["Range", Sequence[int], int]


def _normalize(dims: RangeLike) -> Tuple[int, ...]:
    if isinstance(dims, Range):
        return dims.sizes
    if isinstance(dims, ID):
        return dims.indices
    if isinstance(dims, int):
        return (dims,)
    return tuple(int(d) for d in dims)


@dataclass(frozen=True)
class Range:
    """A 1-3 dimensional extent (``sycl::range<D>``)."""

    sizes: Tuple[int, ...]

    def __init__(self, *sizes: Union[int, Sequence[int]]):
        if len(sizes) == 1 and not isinstance(sizes[0], int):
            values = tuple(int(s) for s in sizes[0])
        else:
            values = tuple(int(s) for s in sizes)
        if not 1 <= len(values) <= 3:
            raise ValueError("Range must have between 1 and 3 dimensions")
        if any(s < 0 for s in values):
            raise ValueError("Range extents must be non-negative")
        object.__setattr__(self, "sizes", values)

    @property
    def dimensions(self) -> int:
        return len(self.sizes)

    def size(self) -> int:
        total = 1
        for s in self.sizes:
            total *= s
        return total

    def get(self, dim: int) -> int:
        return self.sizes[dim]

    def __getitem__(self, dim: int) -> int:
        return self.sizes[dim]

    def __iter__(self) -> Iterator[int]:
        return iter(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)

    def __str__(self) -> str:
        return f"range<{self.dimensions}>{self.sizes}"


@dataclass(frozen=True)
class ID:
    """A point in an index space (``sycl::id<D>``)."""

    indices: Tuple[int, ...]

    def __init__(self, *indices: Union[int, Sequence[int]]):
        if len(indices) == 1 and not isinstance(indices[0], int):
            values = tuple(int(i) for i in indices[0])
        else:
            values = tuple(int(i) for i in indices)
        if not 1 <= len(values) <= 3:
            raise ValueError("ID must have between 1 and 3 dimensions")
        object.__setattr__(self, "indices", values)

    @property
    def dimensions(self) -> int:
        return len(self.indices)

    def get(self, dim: int) -> int:
        return self.indices[dim]

    def __getitem__(self, dim: int) -> int:
        return self.indices[dim]

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def __str__(self) -> str:
        return f"id<{self.dimensions}>{self.indices}"


@dataclass(frozen=True)
class NDRange:
    """Global + local iteration space (``sycl::nd_range<D>``)."""

    global_range: Range
    local_range: Range

    def __init__(self, global_range: RangeLike, local_range: RangeLike):
        global_r = global_range if isinstance(global_range, Range) \
            else Range(_normalize(global_range))
        local_r = local_range if isinstance(local_range, Range) \
            else Range(_normalize(local_range))
        if global_r.dimensions != local_r.dimensions:
            raise ValueError("global and local ranges must have the same rank")
        for g, l in zip(global_r, local_r):
            if l == 0 or g % l != 0:
                raise ValueError(
                    f"global range {g} is not divisible by local range {l}")
        object.__setattr__(self, "global_range", global_r)
        object.__setattr__(self, "local_range", local_r)

    @property
    def dimensions(self) -> int:
        return self.global_range.dimensions

    @property
    def group_range(self) -> Range:
        return Range(tuple(g // l for g, l in
                           zip(self.global_range, self.local_range)))

    def num_work_items(self) -> int:
        return self.global_range.size()

    def num_work_groups(self) -> int:
        return self.group_range.size()

    def work_group_size(self) -> int:
        return self.local_range.size()

    def __str__(self) -> str:
        return f"nd_range<{self.dimensions}>({self.global_range}, {self.local_range})"


def linearize(indices: Sequence[int], extents: Sequence[int]) -> int:
    """Row-major linearization of a multi-dimensional index."""
    linear = 0
    for idx, extent in zip(indices, extents):
        linear = linear * extent + idx
    return linear


def delinearize(linear: int, extents: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`linearize`."""
    indices = []
    for extent in reversed(list(extents)):
        indices.append(linear % extent)
        linear //= extent
    return tuple(reversed(indices))
