"""Compile-to-Python execution tier (the ``"jit"`` backend).

The PR 5 interpreter re-dispatches every operation of every work item
through the evaluator registry — ~350k ops/s.  This tier compiles a
``func.func`` body **once** into the source text of one Python function
and ``compile()``/``exec``\\ s it, so a kernel launch becomes plain
Python loops over flat NumPy arrays with zero per-op dispatch.  The
generated function preserves the interpreter's observable semantics:

* **Numerics** — integers are Python ints, floats binary64, storage
  rounds through the element dtype (loads emit ``float(flat[i])`` /
  ``int(flat[i])`` so an f32 array element becomes the same binary64
  value the interpreter produced); division/remainder/min/max/compare
  helpers are shared with or mirrored from :mod:`repro.dialects.arith`.
* **Traps** — bounds checks, div-by-zero, non-positive steps and cast
  failures raise the same :class:`TrapError` the interpreter raises.
* **Counters** — every structured block gets a compile-time op/load/
  store/byte tally and a run-time execution count (``_bc<n>``); one
  ``finally`` block multiplies them out, so the reported
  :class:`ExecutionCounters` match the interpreter's exactly.  Loop
  bodies also check ``_bc * ops > max_steps``, bounding runaway loops
  like the interpreter's step budget does.
* **Barriers** — kernels containing ``sycl.group_barrier`` compile to a
  per-item *generator* that yields at barriers; the generated group
  loop round-robins the generators exactly like
  ``Interpreter._run_group``.  Barrier-free kernels compile to plain
  nested loops (the fast path).

Anything outside the supported op set raises
:class:`JITUnsupportedError` at compile time, which the backend turns
into a :class:`~repro.interp.engine.TierFallback` — the engine then
runs the interpreter, so the JIT can never fail an execution the
interpreter would pass.  Runtime guard failures in the generated
prologue (an argument that is not array-backed) fall back the same way
*before* any side effect.

**Caching.**  Compiled executables are cached per structural
fingerprint: the key is ``(text_fingerprint(printed function),
"jit:<mode>")`` — the same key scheme (and, optionally, the same
:class:`~repro.transforms.disk_cache.DiskCache`) the compile cache
uses.  Disk entries store the *generated Python source* as the entry
text; rehydration is ``compile()`` + ``exec`` against the static
namespace below, no emitter run needed.

**Fault injection** (:mod:`repro.faults`): ``jit.compile`` (``corrupt``
poisons the generated source, ``transient`` fails the compile) and
``jit.exec`` (fails an execution before it starts), both keyed by the
function fingerprint.  Both degrade to the interpreter tier with a
recorded remark.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..faults import TransientFault, fault_point
from ..ir import (
    IndexType,
    IntegerType,
    MemRefType,
    Printer,
    is_float,
)
from .engine import Backend, TierFallback, register_executor
from .memory import (
    BARRIER,
    AccessorBinding,
    InterpreterError,
    MemRefStorage,
    TrapError,
    byte_size_of,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships NumPy
    _np = None


class JITUnsupportedError(InterpreterError):
    """The function uses a construct the emitter does not compile."""


class JITExecutionError(InterpreterError):
    """A generated executable failed mid-run for a non-semantic reason.

    Semantic traps (:class:`TrapError`) propagate unchanged; this wraps
    unexpected failures (a corrupt executable, an emitter bug) so the
    engine's re-materializing ``execute`` path can degrade to the
    interpreter tier.
    """


class _GuardFallback(Exception):
    """A generated prologue guard failed *before any side effect*."""


# ---------------------------------------------------------------------------
# Runtime helpers — everything the generated code may reference.  All
# module-level (static), so a source rehydrated from disk runs with a
# plain ``exec(source, _jit_namespace())``.
# ---------------------------------------------------------------------------

def _jit_floordiv(a, b):
    # C-style truncating division (mirrors arith._floordiv).
    return int(a / b) if (a < 0) != (b < 0) and a % b != 0 else a // b


def _jit_divsi(a, b):
    if b == 0:
        raise TrapError("division by zero in 'arith.divsi'")
    return _jit_floordiv(a, b)


def _jit_divui(a, b):
    if b == 0:
        raise TrapError("division by zero in 'arith.divui'")
    return a // b


def _jit_remsi(a, b):
    if b == 0:
        raise TrapError("division by zero in 'arith.remsi'")
    return a - _jit_floordiv(a, b) * b


def _jit_remui(a, b):
    if b == 0:
        raise TrapError("division by zero in 'arith.remui'")
    return a % b


def _jit_ieee_zero_divide(op_name, a, b):
    if op_name == "arith.divf" and a != 0.0 and not math.isnan(a):
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return math.nan


def _jit_divf(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        return _jit_ieee_zero_divide("arith.divf", float(a), float(b))


def _jit_remf(a, b):
    try:
        return math.fmod(a, b)
    except (ValueError, ZeroDivisionError):
        return math.nan


def _jit_minf(a, b):
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return min(a, b)


def _jit_maxf(a, b):
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return max(a, b)


def _jit_shift(op_name, compute, width, a, b):
    shift = int(b)
    if not 0 <= shift < width:
        raise TrapError(
            f"shift amount {shift} out of range for i{width} in "
            f"'{op_name}'")
    return compute(int(a), shift)


def _jit_shli(a, b, width):
    return _jit_shift("arith.shli", lambda x, s: x << s, width, a, b)


def _jit_shrsi(a, b, width):
    return _jit_shift("arith.shrsi", lambda x, s: x >> s, width, a, b)


def _jit_fptosi(value):
    try:
        return int(value)
    except (ValueError, OverflowError) as error:
        raise TrapError(
            f"'arith.fptosi' cannot convert {value!r}: {error}") from None


def _jit_at(values, dim, what):
    dim = int(dim)
    if not 0 <= dim < len(values):
        raise TrapError(
            f"dimension {dim} out of range for {what} of rank "
            f"{len(values)}")
    return int(values[dim])


def _jit_local_tile(local_accessor):
    """The per-group NumPy tile behind a LocalAccessor argument (the
    same dtype selection ``Interpreter._local_storages`` performs)."""
    from .interpreter import _element_type_for_dtype
    from .memory import _numpy_dtype

    shape = tuple(int(d) for d in local_accessor.shape)
    dtype = _numpy_dtype(_element_type_for_dtype(local_accessor.dtype))
    if dtype is None:
        raise _GuardFallback("local accessor dtype is not array-backed")
    total = 1
    for dim in shape:
        total *= dim
    return _np.zeros(total, dtype=dtype)


def _jit_namespace() -> Dict[str, object]:
    """Fresh globals for one executable.  Static by construction: every
    name binds a module-level object, so disk-cached source needs only
    ``compile()`` + ``exec`` to rehydrate."""
    from ..dialects.arith import _FLOAT_PREDICATES
    from ..runtime.accessor import LocalAccessor

    return {
        "_np": _np,
        "math": math,
        "_TrapError": TrapError,
        "_Fallback": _GuardFallback,
        "_BARRIER": BARRIER,
        "_AccessorBinding": AccessorBinding,
        "_MemRefStorage": MemRefStorage,
        "_LocalAccessor": LocalAccessor,
        "_at": _jit_at,
        "_divsi": _jit_divsi,
        "_divui": _jit_divui,
        "_remsi": _jit_remsi,
        "_remui": _jit_remui,
        "_divf": _jit_divf,
        "_remf": _jit_remf,
        "_minf": _jit_minf,
        "_maxf": _jit_maxf,
        "_shli": _jit_shli,
        "_shrsi": _jit_shrsi,
        "_fptosi": _jit_fptosi,
        "_FCMP": _FLOAT_PREDICATES,
        "_local_tile": _jit_local_tile,
    }


# ---------------------------------------------------------------------------
# The emitter
# ---------------------------------------------------------------------------

class _Stat:
    """Per-structured-block static tallies (multiplied by the block's
    run-time execution count when counters are flushed)."""

    __slots__ = ("ops", "loads", "stores", "bytes_read", "bytes_written",
                 "barriers")

    def __init__(self):
        self.ops = 0
        self.loads = 0
        self.stores = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.barriers = 0


class _Ref:
    """How generated code addresses one storage: a flat array expression
    plus static layout facts."""

    __slots__ = ("flat", "size", "shape", "is_float", "elem_bytes")

    def __init__(self, flat, size, shape, is_float_, elem_bytes):
        self.flat = flat            # expr: the flat ndarray
        self.size = size            # expr or int: element count
        self.shape = shape          # tuple of expr-or-int extents, or None
        self.is_float = is_float_
        self.elem_bytes = elem_bytes


class _Acc:
    """Prologue-hoisted accessor facts (``a<i>_*`` variables)."""

    __slots__ = ("base", "dims", "ref")

    def __init__(self, base: str, dims: int, ref: _Ref):
        self.base = base
        self.dims = dims
        self.ref = ref


def _scalar_int_type(type_) -> bool:
    return isinstance(type_, (IntegerType, IndexType))


class _Emitter:
    """Emits one Python function for one ``func.func`` body.

    ``mode`` is ``"function"`` (plain call), ``"basic"`` (range
    launch), ``"nd"`` (nd-range launch, no barriers — nested loops) or
    ``"nd-barrier"`` (nd-range launch with barriers — per-item
    generators round-robined per group).
    """

    # Tables are class attributes so tests can monkeypatch a deliberate
    # miscompile (the differential harness must catch it).
    BIN_INT = {
        "arith.addi": "+", "arith.subi": "-", "arith.muli": "*",
        "arith.andi": "&", "arith.ori": "|", "arith.xori": "^",
    }
    BIN_FLOAT = {
        "arith.addf": "+", "arith.subf": "-", "arith.mulf": "*",
    }
    BIN_HELPER = {
        "arith.divsi": "_divsi", "arith.divui": "_divui",
        "arith.remsi": "_remsi", "arith.remui": "_remui",
        "arith.divf": "_divf", "arith.remf": "_remf",
        "arith.minf": "_minf", "arith.maxf": "_maxf",
    }
    CMP_INT = {
        "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">",
        "sge": ">=", "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
    }
    CMP_FLOAT_ORDERED = {
        "oeq": "==", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">=",
    }

    def __init__(self, function, mode: str):
        self.fn = function
        self.mode = mode
        self.out: List[Optional[str]] = []     # body lines (indented)
        self.pro: List[str] = []               # prologue lines (indent 1)
        self.ind = 2                           # current body indent
        self.kinds: Dict[int, Tuple] = {}      # id(Value) -> kind tuple
        self.blocks: List[_Stat] = []
        #: Per-block static execution-count expression, or None when the
        #: count is data dependent (then a run-time ``_bc`` counts it).
        self.block_static: List[Optional[str]] = []
        self.count_stack: List[Optional[str]] = []
        self.patches: List[Tuple[int, int, int, bool]] = []
        self.static_budget: List[Tuple[str, int]] = []
        self.scopes: List[set] = []            # constructed-cell scopes
        self.memo_stack: List[Dict] = []       # scoped subscript CSE
        #: Result variables of the enclosing scf.while, written by its
        #: scf.condition terminator.
        self.cond_sink: List[List[str]] = []
        self.cell_comps: Dict[str, List[str]] = {}
        self.hoisted: Dict[int, _Ref] = {}     # id(alloc op) -> group tile
        self.group_lines: List[str] = []       # per-group setup
        self.total_expr = "1"
        self.n = 0
        self.item_rank: Optional[int] = None
        self.uses_generator = mode == "nd-barrier"
        self.g_vars: List[str] = []
        self.l_vars: List[str] = []
        self.p_vars: List[str] = []

    # -- small utilities -----------------------------------------------------
    def fresh(self, prefix: str = "v") -> str:
        self.n += 1
        return f"{prefix}{self.n}"

    def line(self, text: str) -> None:
        self.out.append("    " * self.ind + text)

    def unsup(self, why: str) -> JITUnsupportedError:
        return JITUnsupportedError(
            f"'{self.fn.sym_name}' is not jit-compilable: {why}")

    def kind_of(self, value) -> Tuple:
        kind = self.kinds.get(id(value))
        if kind is None:
            raise self.unsup("use of a value the emitter did not bind")
        return kind

    def expr(self, value) -> str:
        kind = self.kind_of(value)
        if kind[0] in ("const", "scalar"):
            return kind[1]
        raise self.unsup(f"a {kind[0]} value used where a scalar is needed")

    def bc(self, bid: int) -> str:
        return f"_bc[{bid}]" if self.uses_generator else f"_bc{bid}"

    def const_dim(self, op):
        """The dimension operand of a query op: an int when constant, a
        ``("dyn", expr)`` pair when dynamic, 0 when absent."""
        if len(op.operands) <= 1:
            return 0
        kind = self.kind_of(op.operands[1])
        if kind[0] == "const":
            return int(kind[1].strip("()"))
        if kind[0] == "scalar":
            return ("dyn", kind[1])
        raise self.unsup("a non-scalar dimension operand")

    # -- top-level assembly --------------------------------------------------
    def emit(self) -> str:
        if self.fn.is_declaration:
            raise self.unsup("function is a declaration")
        self._emit_prologue()
        if self.mode == "function":
            self._emit_function_body()
        else:
            self._scan_group_allocs()
            self._emit_kernel_body()
        return self._assemble()

    def _assemble(self) -> str:
        for pos, ind, bid, budget in self.patches:
            stat = self.blocks[bid]
            pad = "    " * ind
            text = f"{pad}{self.bc(bid)} += 1"
            if budget:
                text += (f"\n{pad}if {self.bc(bid)} * {max(stat.ops, 1)} > "
                         f"_max_steps: raise _TrapError('exceeded the "
                         f"interpreter step budget')")
            self.out[pos] = text
        lines = ["def _run(_args, _GR, _LR, _PR, _counters, _max_steps):"]
        lines += self.pro
        # Statically counted blocks pre-check the step budget once,
        # instead of testing it on every execution.
        for expr, bid in self.static_budget:
            ops = max(self.blocks[bid].ops, 1)
            lines.append(f"    if ({expr}) * {ops} > _max_steps: raise "
                         f"_TrapError('exceeded the interpreter step "
                         f"budget')")
        if self.patches:
            if self.uses_generator:
                lines.append(f"    _bc = [0] * {len(self.blocks)}")
            else:
                for _, _, bid, _ in self.patches:
                    lines.append(f"    _bc{bid} = 0")
        lines.append("    try:")
        lines += [text for text in self.out if text is not None]
        lines.append("    finally:")
        flush = self._flush_lines()
        lines += flush if flush else ["        pass"]
        lines.append("    return _ret" if self.mode == "function"
                     else "    return None")
        return "\n".join(lines) + "\n"

    def _block_count(self, bid: int) -> str:
        static = self.block_static[bid]
        return f"({static})" if static is not None else self.bc(bid)

    def _flush_lines(self) -> List[str]:
        fields = ("ops", "loads", "stores", "bytes_read", "bytes_written",
                  "barriers")
        lines = []
        for attr in fields:
            terms = [f"{self._block_count(bid)} * {getattr(stat, attr)}"
                     for bid, stat in enumerate(self.blocks)
                     if getattr(stat, attr)]
            if terms:
                lines.append(f"        _counters.{attr} += "
                             + " + ".join(terms))
        return lines

    # -- prologue: unpack and guard the argument vector ----------------------
    def _emit_prologue(self) -> None:
        from ..dialects.sycl import AccessorType, accessor_type_of
        from .interpreter import _item_argument_type

        p = self.pro.append
        for index, argument in enumerate(self.fn.arguments):
            item_type = _item_argument_type(argument.type)
            if item_type is not None:
                if self.mode == "function":
                    raise self.unsup("item argument in a plain call")
                rank = getattr(item_type, "dimensions", 1)
                if self.item_rank is not None and self.item_rank != rank:
                    raise self.unsup("conflicting item argument ranks")
                self.item_rank = rank
                self.kinds[id(argument)] = ("item",)
                continue
            accessor_type = accessor_type_of(argument)
            if isinstance(accessor_type, AccessorType):
                self._prologue_accessor(index, argument, accessor_type, p)
                continue
            if isinstance(argument.type, MemRefType):
                self._prologue_memref(index, argument, p)
                continue
            var = f"x{index}"
            p(f"    {var} = _args[{index}]")
            self.kinds[id(argument)] = ("scalar", var)

    def _prologue_accessor(self, index, argument, accessor_type, p) -> None:
        dims = accessor_type.dimensions
        elem = accessor_type.element_type
        floaty = is_float(elem)
        if accessor_type.is_local:
            if self.mode in ("function", "basic"):
                # Matches Interpreter._launch_basic's trap.
                p("    raise _TrapError('a LocalAccessor argument "
                  "requires a work-group launch (pass local_size)')")
                self.kinds[id(argument)] = ("scalar", "None")
                return
            var = f"la{index}"
            p(f"    {var} = _args[{index}]")
            p(f"    if {var}.__class__ is not _LocalAccessor: "
              f"raise _Fallback('argument {index} is not a LocalAccessor')")
            p(f"    {var}_sh = tuple(int(_d) for _d in {var}.shape)")
            p(f"    if len({var}_sh) != {dims}: "
              f"raise _Fallback('local accessor rank mismatch')")
            p(f"    {var}_n = math.prod({var}_sh)")
            tile = f"{var}_t"
            self.group_lines.append(f"{tile} = _local_tile({var})")
            self.group_lines.append(
                f"if ({tile}.dtype.kind == 'f') is not {floaty}: "
                f"raise _Fallback('local accessor dtype mismatch')")
            ref = _Ref(tile, f"{var}_n",
                       tuple(f"{var}_sh[{k}]" for k in range(dims)),
                       floaty, byte_size_of(elem))
            self.kinds[id(argument)] = ("stor", ref)
            return
        var = f"a{index}"
        p(f"    {var} = _args[{index}]")
        p(f"    if {var}.__class__ is not _AccessorBinding: "
          f"raise _Fallback('argument {index} is not an accessor binding')")
        p(f"    {var}_f = {var}.storage._flat")
        p(f"    if {var}_f is None or ({var}_f.dtype.kind == 'f') is not "
          f"{floaty}: raise _Fallback('accessor storage mismatch')")
        p(f"    {var}_n = {var}.storage._size")
        p(f"    if {var}.dimensions != {dims}: "
          f"raise _Fallback('accessor rank mismatch')")
        p(f"    {var}_mr = {var}.mem_range")
        p(f"    {var}_off = {var}.offset")
        for k in range(dims):
            p(f"    {var}_m{k} = {var}_mr[{k}]")
            p(f"    {var}_o{k} = {var}_off[{k}]")
        p(f"    {var}_ar = {var}.access_range")
        p(f"    {var}_asz = math.prod({var}_ar)")
        p(f"    {var}_b = {var}.base_linear_offset()")
        ref = _Ref(f"{var}_f", f"{var}_n", None, floaty,
                   byte_size_of(elem))
        self.kinds[id(argument)] = ("acc", _Acc(f"{var}_b", dims, ref))

    def _prologue_memref(self, index, argument, p) -> None:
        memref_type = argument.type
        elem = memref_type.element_type
        from .memory import _numpy_dtype

        if _numpy_dtype(elem) is None:
            raise self.unsup(
                f"memref argument of aggregate element type {elem}")
        rank = memref_type.rank
        floaty = is_float(elem)
        var = f"s{index}"
        p(f"    {var} = _args[{index}]")
        p(f"    if {var}.__class__ is not _MemRefStorage: "
          f"raise _Fallback('argument {index} is not a memref storage')")
        p(f"    {var}_f = {var}._flat")
        p(f"    if {var}_f is None or ({var}_f.dtype.kind == 'f') is not "
          f"{floaty}: raise _Fallback('memref storage mismatch')")
        p(f"    {var}_n = {var}._size")
        p(f"    {var}_sh = {var}.shape")
        p(f"    if len({var}_sh) != {rank}: "
          f"raise _Fallback('memref rank mismatch')")
        ref = _Ref(f"{var}_f", f"{var}_n",
                   tuple(f"{var}_sh[{k}]" for k in range(rank)),
                   floaty, byte_size_of(elem))
        self.kinds[id(argument)] = ("stor", ref)

    # -- kernel drivers ------------------------------------------------------
    def _scan_group_allocs(self) -> None:
        """Hoist top-level work-group-local allocs to group scope (the
        shared-tile contract of ``EvalContext.local_storage_for``)."""
        if self.mode == "basic":
            return  # group is None there: local allocs are per-item
        from .memory import _numpy_dtype

        op = self.fn.body.first_op
        while op is not None:
            if op.name in ("memref.alloc", "memref.alloca") \
                    and op.results[0].type.memory_space == "local":
                memref_type = op.results[0].type
                if not memref_type.has_static_shape():
                    raise self.unsup("local alloc with dynamic shape")
                dtype = _numpy_dtype(memref_type.element_type)
                if dtype is None:
                    raise self.unsup("local alloc of aggregate elements")
                tile = self.fresh("t")
                size = memref_type.num_elements()
                self.group_lines.append(
                    f"{tile} = _np.zeros({size}, dtype=_np."
                    f"{_np.dtype(dtype).name})")
                self.hoisted[id(op)] = _Ref(
                    tile, size, tuple(memref_type.shape),
                    is_float(memref_type.element_type),
                    byte_size_of(memref_type.element_type))
            op = op.next_op()

    def _emit_kernel_body(self) -> None:
        rank = self.item_rank
        g = [f"g{d}" for d in range(rank)] if rank else []
        lo = [f"l{d}" for d in range(rank)] if rank else []
        pr = [f"p{d}" for d in range(rank)] if rank else []
        self.g_vars, self.l_vars, self.p_vars = g, lo, pr
        p = self.pro.append
        if rank:
            p(f"    if len(_GR) != {rank}: "
              f"raise _Fallback('launch rank mismatch')")
            p(f"    {', '.join(f'_GR{d}' for d in range(rank))}"
              f"{',' if rank == 1 else ''} = _GR")
            if self.mode != "basic":
                p(f"    if _LR is None or len(_LR) != {rank}: "
                  f"raise _Fallback('launch rank mismatch')")
                p(f"    {', '.join(f'_LR{d}' for d in range(rank))}"
                  f"{',' if rank == 1 else ''} = _LR")
                p(f"    {', '.join(f'_PR{d}' for d in range(rank))}"
                  f"{',' if rank == 1 else ''} = _PR")
            total = " * ".join(f"_GR{d}" for d in range(rank))
        else:
            total = "math.prod(_GR)"
        self.total_expr = total
        self.line(f"_counters.work_items += {total}")
        if self.mode == "basic":
            self._emit_basic_driver(rank, g)
        elif self.mode == "nd":
            self._emit_nd_driver(rank, g, lo, pr)
        else:
            self._emit_nd_barrier_driver(rank, g, lo, pr)

    def _emit_basic_driver(self, rank, g) -> None:
        if not rank:
            self.line("for _i0 in range(math.prod(_GR)):")
            self.ind += 1
            self.emit_block(self.fn.body, None, budget=True,
                            count=self.total_expr)
            self.ind -= 1
            return
        for d in range(rank):
            self.line(f"for {g[d]} in range(_GR{d}):")
            self.ind += 1
        self.emit_block(self.fn.body, None, budget=True,
                        count=self.total_expr)
        self.ind -= rank

    def _emit_nd_driver(self, rank, g, lo, pr) -> None:
        if not rank:
            raise self.unsup("nd launch of a kernel with no item argument")
        for d in range(rank):
            self.line(f"for {pr[d]} in range(_PR{d}):")
            self.ind += 1
        for text in self.group_lines:
            self.line(text)
        for d in range(rank):
            self.line(f"for {lo[d]} in range(_LR{d}):")
            self.ind += 1
            self.line(f"{g[d]} = {pr[d]} * _LR{d} + {lo[d]}")
        self.emit_block(self.fn.body, None, budget=True,
                        count=self.total_expr)
        self.ind -= 2 * rank

    def _emit_nd_barrier_driver(self, rank, g, lo, pr) -> None:
        if not rank:
            raise self.unsup("nd launch of a kernel with no item argument")
        for d in range(rank):
            self.line(f"for {pr[d]} in range(_PR{d}):")
            self.ind += 1
        for text in self.group_lines:
            self.line(text)
        self.line("def _item(_g, _l):")
        self.ind += 1
        joined_g = ", ".join(g) + ("," if rank == 1 else "")
        joined_l = ", ".join(lo) + ("," if rank == 1 else "")
        self.line(f"{joined_g} = _g")
        self.line(f"{joined_l} = _l")
        self.emit_block(self.fn.body, None, budget=True,
                        count=self.total_expr)
        self.line("if False: yield None")  # force generator when no barrier
        self.ind -= 1
        self.line("_active = []")
        for d in range(rank):
            self.line(f"for {lo[d]} in range(_LR{d}):")
            self.ind += 1
        gid = ", ".join(f"{pr[d]} * _LR{d} + {lo[d]}" for d in range(rank))
        lid = ", ".join(lo)
        comma = "," if rank == 1 else ""
        self.line(f"_active.append(_item(({gid}{comma}), ({lid}{comma})))")
        self.ind -= rank
        # Round-robin to the next barrier, exactly Interpreter._run_group.
        self.line("while _active:")
        self.ind += 1
        self.line("_arrived = []")
        self.line("for _gen in _active:")
        self.ind += 1
        self.line("try:")
        self.line("    next(_gen)")
        self.line("except StopIteration:")
        self.line("    continue")
        self.line("_arrived.append(_gen)")
        self.ind -= 1
        self.line("_active = _arrived")
        self.ind -= 1
        self.ind -= rank

    def _emit_function_body(self) -> None:
        self.pro.insert(0, "    _ret = []")
        self.emit_block(self.fn.body, None, budget=False, count="1")

    # -- block emission ------------------------------------------------------
    def emit_block(self, block, arg_kinds, budget: bool,
                   yield_vars: Optional[List[str]] = None,
                   count: Optional[str] = None) -> None:
        """Emit one region block.  ``count`` is the block's execution
        count as an expression of prologue variables when it is known
        statically (then no run-time counter is emitted for it)."""
        if arg_kinds is not None:
            for block_arg, kind in zip(block.arguments, arg_kinds):
                self.kinds[id(block_arg)] = kind
        bid = len(self.blocks)
        stat = _Stat()
        self.blocks.append(stat)
        self.block_static.append(count)
        if count is None:
            self.patches.append((len(self.out), self.ind, bid, budget))
            self.out.append(None)
        elif budget:
            self.static_budget.append((count, bid))
        self.count_stack.append(count)
        self.scopes.append(set())
        self.memo_stack.append({})
        start = len(self.out)
        op = block.first_op
        while op is not None:
            stat.ops += 1
            self.emit_op(op, stat, yield_vars)
            op = op.next_op()
        if len(self.out) == start:
            self.line("pass")
        self.memo_stack.pop()
        self.scopes.pop()
        self.count_stack.pop()

    # -- single-op emission --------------------------------------------------
    def emit_op(self, op, stat: _Stat, yield_vars) -> None:
        name = op.name
        if name == "arith.constant":
            value = op.value
            if isinstance(value, bool):
                text = repr(value)
            elif isinstance(value, int):
                text = repr(value) if value >= 0 else f"({value!r})"
            elif isinstance(value, float):
                if math.isnan(value):
                    text = "math.nan"
                elif math.isinf(value):
                    text = "math.inf" if value > 0 else "(-math.inf)"
                else:
                    text = repr(value) if value >= 0 else f"({value!r})"
            else:
                raise self.unsup(f"constant of value {value!r}")
            self.kinds[id(op.results[0])] = ("const", text)
            return
        if name in self.BIN_INT or name in ("arith.minsi", "arith.maxsi"):
            a, b = self.expr(op.operands[0]), self.expr(op.operands[1])
            if name in self.BIN_INT:
                body = f"{a} {self.BIN_INT[name]} {b}"
            else:
                fun = "min" if name == "arith.minsi" else "max"
                body = f"{fun}({a}, {b})"
            if getattr(op.results[0].type, "width", 64) == 1:
                body = f"bool({body})"
            self._assign(op.results[0], body)
            return
        if name in self.BIN_FLOAT:
            a, b = self.expr(op.operands[0]), self.expr(op.operands[1])
            self._assign(op.results[0],
                         f"{a} {self.BIN_FLOAT[name]} {b}")
            return
        if name in self.BIN_HELPER:
            a, b = self.expr(op.operands[0]), self.expr(op.operands[1])
            self._assign(op.results[0],
                         f"{self.BIN_HELPER[name]}({a}, {b})")
            return
        if name in ("arith.shli", "arith.shrsi"):
            width = getattr(op.results[0].type, "width", 64)
            a, b = self.expr(op.operands[0]), self.expr(op.operands[1])
            helper = "_shli" if name == "arith.shli" else "_shrsi"
            self._assign(op.results[0], f"{helper}({a}, {b}, {width})")
            return
        if name == "arith.cmpi":
            predicate = op.predicate
            sym = self.CMP_INT.get(predicate)
            if sym is None:
                raise self.unsup(f"cmpi predicate {predicate!r}")
            a, b = self.expr(op.operands[0]), self.expr(op.operands[1])
            self._assign(op.results[0], f"{a} {sym} {b}")
            return
        if name == "arith.cmpf":
            predicate = op.predicate
            a, b = self.expr(op.operands[0]), self.expr(op.operands[1])
            sym = self.CMP_FLOAT_ORDERED.get(predicate)
            if sym is not None:
                self._assign(op.results[0], f"{a} {sym} {b}")
            else:
                from ..dialects.arith import _FLOAT_PREDICATES

                if predicate not in _FLOAT_PREDICATES:
                    raise self.unsup(f"cmpf predicate {predicate!r}")
                self._assign(op.results[0],
                             f"bool(_FCMP[{predicate!r}]({a}, {b}))")
            return
        if name == "arith.select":
            c = self.expr(op.operands[0])
            t = self.expr(op.operands[1])
            f = self.expr(op.operands[2])
            self._assign(op.results[0], f"({t} if {c} else {f})")
            return
        if name in ("arith.index_cast", "arith.extsi"):
            value = op.operands[0]
            if _scalar_int_type(value.type) \
                    and getattr(value.type, "width", 64) != 1:
                # Already a Python int: aliasing skips a no-op copy.
                self.kinds[id(op.results[0])] = self.kind_of(value)
            else:
                self._assign(op.results[0], f"int({self.expr(value)})")
            return
        if name == "arith.trunci":
            width = op.results[0].type.width
            mask = (1 << width) - 1
            body = f"({self.expr(op.operands[0])}) & {mask}"
            if width == 1:
                body = f"bool({body})"
            self._assign(op.results[0], body)
            return
        if name == "arith.sitofp":
            self._assign(op.results[0],
                         f"float({self.expr(op.operands[0])})")
            return
        if name == "arith.fptosi":
            self._assign(op.results[0],
                         f"_fptosi({self.expr(op.operands[0])})")
            return
        if name in ("arith.extf", "arith.truncf"):
            value = op.operands[0]
            kind = self.kind_of(value)
            if kind[0] in ("const", "scalar"):
                self.kinds[id(op.results[0])] = kind
            else:
                raise self.unsup(f"'{name}' of a non-scalar value")
            return
        if name == "arith.negf":
            self._assign(op.results[0],
                         f"-float({self.expr(op.operands[0])})")
            return
        if name in ("scf.yield", "affine.yield"):
            if yield_vars is not None and op.operands:
                exprs = [self.expr(v) for v in op.operands]
                self.line(f"{', '.join(yield_vars)} = {', '.join(exprs)}")
            return
        if name == "func.return":
            if self.mode == "function":
                exprs = [self.expr(v) for v in op.operands]
                self.line(f"_ret = [{', '.join(exprs)}]")
            elif op.operands:
                raise self.unsup("kernel returning values")
            return
        if name == "scf.if":
            self._emit_if(op)
            return
        if name in ("scf.for", "affine.for"):
            self._emit_for(op, affine=(name == "affine.for"))
            return
        if name == "scf.while":
            self._emit_while(op)
            return
        if name == "scf.condition":
            if not self.cond_sink:
                raise self.unsup("'scf.condition' outside an scf.while")
            res_vars = self.cond_sink[-1]
            if res_vars:
                exprs = [self.expr(v) for v in op.operands[1:]]
                self.line(f"{', '.join(res_vars)} = {', '.join(exprs)}")
            self.line(f"if not {self.expr(op.operands[0])}: break")
            return
        if name == "affine.apply":
            coefficients = op.coefficients
            if len(coefficients) != len(op.operands):
                self.line("raise _TrapError('affine.apply coefficient / "
                          "operand count mismatch')")
                self._assign(op.results[0], "0")
                return
            terms = [str(op.get_int_attr("constant", 0))]
            for coefficient, operand in zip(coefficients, op.operands):
                terms.append(f"({coefficient}) * ({self.expr(operand)})")
            self._assign(op.results[0], " + ".join(terms))
            return
        if name == "affine.min":
            if not op.operands:
                raise self.unsup("affine.min with no operands")
            exprs = [self.expr(v) for v in op.operands]
            body = exprs[0] if len(exprs) == 1 else \
                f"min({', '.join(exprs)})"
            self._assign(op.results[0], body)
            return
        if name in ("memref.alloc", "memref.alloca"):
            self._emit_alloc(op)
            return
        if name == "memref.dealloc":
            return
        if name == "memref.cast":
            self.kinds[id(op.results[0])] = self.kind_of(op.operands[0])
            return
        if name == "memref.dim":
            self._emit_dim(op)
            return
        if name in ("memref.load", "affine.load"):
            self._emit_load(op, stat)
            return
        if name in ("memref.store", "affine.store"):
            self._emit_store(op, stat)
            return
        if name == "sycl.constructor":
            self._emit_constructor(op)
            return
        if name in ("sycl.id.get", "sycl.range.get"):
            what = "the id" if name == "sycl.id.get" else "the range"
            self._emit_component_get(op, what)
            return
        if name == "sycl.range.size":
            self._emit_range_size(op)
            return
        if name in ("sycl.item.get_id", "sycl.nd_item.get_global_id",
                    "sycl.global_id"):
            self._emit_position(op, self.g_vars, "the global id",
                                require_local=False)
            return
        if name in ("sycl.item.get_linear_id",
                    "sycl.nd_item.get_global_linear_id"):
            self._emit_linear(op, self.g_vars, "_GR", require_local=False)
            return
        if name in ("sycl.nd_item.get_local_id", "sycl.local_id"):
            self._emit_position(op, self.l_vars, "the local id",
                                require_local=True)
            return
        if name == "sycl.nd_item.get_local_linear_id":
            self._emit_linear(op, self.l_vars, "_LR", require_local=True)
            return
        if name in ("sycl.nd_item.get_group_id", "sycl.group.get_group_id"):
            self._emit_position(op, self.p_vars, "the group id",
                                require_local=True)
            return
        if name in ("sycl.item.get_range", "sycl.nd_item.get_global_range"):
            self._emit_range_component(op, "_GR", "the global range",
                                       require_local=False)
            return
        if name in ("sycl.nd_item.get_local_range",
                    "sycl.group.get_local_range"):
            self._emit_range_component(op, "_LR", "the local range",
                                       require_local=True)
            return
        if name in ("sycl.nd_item.get_group_range",
                    "sycl.group.get_group_range"):
            self._emit_range_component(op, "_PR", "the group range",
                                       require_local=True)
            return
        if name == "sycl.nd_item.get_group":
            self._item_operand(op)
            self._check_local()
            self.kinds[id(op.results[0])] = ("item",)
            return
        if name == "sycl.accessor.subscript":
            self._emit_subscript(op)
            return
        if name == "sycl.accessor.get_pointer":
            acc = self._acc_of(op.operands[0])
            self.kinds[id(op.results[0])] = ("view", acc.ref, acc.base,
                                             False)
            return
        if name in ("sycl.accessor.get_range", "sycl.accessor.get_mem_range",
                    "sycl.accessor.get_offset"):
            self._emit_accessor_component(op)
            return
        if name == "sycl.accessor.size":
            acc = self._acc_of(op.operands[0])
            var = acc.ref.flat[:-2]  # "a<i>_f" -> "a<i>"
            self.kinds[id(op.results[0])] = ("scalar", f"{var}_asz")
            return
        if name == "sycl.group_barrier":
            self._emit_barrier(op, stat)
            return
        if name in ("sycl.host.constructor", "sycl.host.schedule_kernel",
                    "sycl.host.submit"):
            self.line(f"raise _TrapError(\"host-side operation '{name}' "
                      f"is not executable by the device interpreter (drive "
                      f"the host program through the runtime instead)\")")
            for result in op.results:
                self.kinds[id(result)] = ("scalar", "None")
            return
        raise self.unsup(f"operation '{name}'")

    def _assign(self, result, body: str) -> None:
        var = self.fresh()
        self.line(f"{var} = {body}")
        self.kinds[id(result)] = ("scalar", var)

    # -- structured control flow ---------------------------------------------
    def _emit_if(self, op) -> None:
        cond = self.expr(op.operands[0])
        res_vars = [self.fresh() for _ in op.results]
        self.line(f"if {cond}:")
        self.ind += 1
        self.emit_block(op.then_block, None, budget=False,
                        yield_vars=res_vars)
        self.ind -= 1
        else_block = op.else_block
        if else_block is not None:
            self.line("else:")
            self.ind += 1
            self.emit_block(else_block, None, budget=False,
                            yield_vars=res_vars)
            self.ind -= 1
        elif res_vars:
            self.line("else:")
            self.ind += 1
            self.line("raise _TrapError('scf.if with results but no else "
                      "region')")
            self.ind -= 1
        for result, var in zip(op.results, res_vars):
            self.kinds[id(result)] = ("scalar", var)

    def _const_int(self, value) -> Optional[int]:
        kind = self.kind_of(value)
        if kind[0] != "const":
            return None
        try:
            return int(kind[1].strip("()"))
        except ValueError:
            return None

    def _emit_for(self, op, affine: bool) -> None:
        if affine:
            lower = self.expr(op.operands[0])
            upper = self.expr(op.operands[1])
            step = op.step
            carried_init = list(op.operands[2:])
            if step <= 0:
                self.line(f"raise _TrapError('affine.for with non-positive "
                          f"step {step}')")
                for result in op.results:
                    self.kinds[id(result)] = ("scalar", "None")
                return
            step_text = "" if step == 1 else f", {step}"
            lo_c = self._const_int(op.operands[0])
            up_c = self._const_int(op.operands[1])
            step_c: Optional[int] = step
        else:
            lower = self.expr(op.operands[0])
            upper = self.expr(op.operands[1])
            step_expr = self.expr(op.operands[2])
            carried_init = list(op.operands[3:])
            self.line(f"if {step_expr} <= 0: raise _TrapError("
                      f"'scf.for with non-positive step ' + "
                      f"str({step_expr}))")
            step_text = f", {step_expr}"
            lo_c = self._const_int(op.operands[0])
            up_c = self._const_int(op.operands[1])
            step_c = self._const_int(op.operands[2])
        # A loop with constant bounds nested in statically counted
        # blocks is itself statically counted: no per-iteration
        # bookkeeping in the generated code.
        parent = self.count_stack[-1]
        count = None
        if parent is not None and lo_c is not None and up_c is not None \
                and step_c is not None and step_c > 0:
            trips = max(0, -((lo_c - up_c) // step_c))
            count = f"({parent}) * {trips}"
        c_vars = [self.fresh("c") for _ in carried_init]
        if c_vars:
            inits = [self.expr(v) for v in carried_init]
            self.line(f"{', '.join(c_vars)} = {', '.join(inits)}")
        iv = self.fresh("i")
        self.line(f"for {iv} in range({lower}, {upper}{step_text}):")
        self.ind += 1
        arg_kinds = [("scalar", iv)] + [("scalar", c) for c in c_vars]
        self.emit_block(op.body, arg_kinds, budget=True, yield_vars=c_vars,
                        count=count)
        self.ind -= 1
        for result, var in zip(op.results, c_vars):
            self.kinds[id(result)] = ("scalar", var)

    def _emit_while(self, op) -> None:
        """``scf.while`` compiles to ``while True`` with the condition
        check in the middle::

            w.. = <inits>
            while True:
                <before block, args = w..>
                r.. = <forwarded>            # from scf.condition
                if not <cond>: break         #
                <after block, args = r..>
                w.. = <yielded>              # from scf.yield

        The before block's trip count is data dependent, so it carries a
        run-time ``_bc`` counter with the step-budget check — that
        bounds runaway loops exactly like the interpreter's budget.
        """
        w_vars = [self.fresh("w") for _ in op.operands]
        if w_vars:
            inits = [self.expr(v) for v in op.operands]
            self.line(f"{', '.join(w_vars)} = {', '.join(inits)}")
        res_vars = [self.fresh() for _ in op.results]
        self.line("while True:")
        self.ind += 1
        self.cond_sink.append(res_vars)
        self.emit_block(op.before_block,
                        [("scalar", w) for w in w_vars], budget=True)
        self.cond_sink.pop()
        self.emit_block(op.after_block,
                        [("scalar", r) for r in res_vars], budget=False,
                        yield_vars=w_vars)
        self.ind -= 1
        for result, var in zip(op.results, res_vars):
            self.kinds[id(result)] = ("scalar", var)

    # -- memory --------------------------------------------------------------
    def _emit_alloc(self, op) -> None:
        from .memory import _numpy_dtype

        hoisted = self.hoisted.get(id(op))
        if hoisted is not None:
            self.kinds[id(op.results[0])] = ("stor", hoisted)
            return
        memref_type = op.results[0].type
        if memref_type.memory_space == "local" and self.mode not in (
                "basic", "function"):
            raise self.unsup("local alloc outside the kernel entry block")
        dtype = _numpy_dtype(memref_type.element_type)
        if dtype is None:
            # Aggregate elements (!sycl_id_N): a one-slot cell written
            # by sycl.constructor.  Virtual — the id components flow
            # through the emitter symbolically, no tuple materializes.
            if memref_type.num_elements() not in (1, None) \
                    and memref_type.rank != 0:
                raise self.unsup("multi-element aggregate alloc")
            cell = self.fresh("cell")
            self.kinds[id(op.results[0])] = ("cell", cell)
            return
        if not memref_type.has_static_shape():
            raise self.unsup("alloc with dynamic shape")
        size = memref_type.num_elements()
        var = self.fresh("m")
        self.line(f"{var} = _np.zeros({size}, dtype=_np."
                  f"{_np.dtype(dtype).name})")
        self.kinds[id(op.results[0])] = ("stor", _Ref(
            var, size, tuple(memref_type.shape),
            is_float(memref_type.element_type),
            byte_size_of(memref_type.element_type)))

    def _emit_dim(self, op) -> None:
        kind = self.kind_of(op.operands[0])
        dim_kind = self.kind_of(op.operands[1])
        if kind[0] != "stor" or kind[1].shape is None \
                or dim_kind[0] != "const":
            self.line("raise _TrapError('memref.dim out of range')")
            self._assign(op.results[0], "0")
            return
        dim = int(dim_kind[1])
        shape = kind[1].shape
        if not 0 <= dim < len(shape):
            self.line(f"raise _TrapError('memref.dim {dim} out of range')")
            self._assign(op.results[0], "0")
            return
        extent = shape[dim]
        self.kinds[id(op.results[0])] = ("scalar", f"int({extent})"
                                         if isinstance(extent, str)
                                         else str(extent))

    def _target_position(self, target, index_values):
        """(position expr, check lines, ref) for a load/store target."""
        kind = self.kind_of(target)
        if kind[0] == "stor":
            ref = kind[1]
            shape = ref.shape
            if shape is None or len(index_values) != len(shape):
                raise self.unsup("rank-mismatched memref access")
            if not shape:
                return "0", [], ref
            idx = [self.expr(v) for v in index_values]
            checks = " and ".join(
                f"0 <= {i} < {e}" for i, e in zip(idx, shape))
            position = idx[0]
            for i, extent in zip(idx[1:], shape[1:]):
                position = f"({position}) * {extent} + {i}"
            if len(idx) > 1:
                var = self.fresh("q")
                lines = [f"if not ({checks}): raise _TrapError('memref "
                         f"index out of bounds')",
                         f"{var} = {position}"]
                return var, lines, ref
            return position, [f"if not ({checks}): raise _TrapError("
                              f"'memref index out of bounds')"], ref
        if kind[0] == "view":
            _, ref, base, checked = kind
            if len(index_values) > 1:
                raise self.unsup("multi-index access through a view")
            offset = self.expr(index_values[0]) if index_values else "0"
            if checked and offset == "0":
                return base, [], ref
            var = self.fresh("q")
            lines = [f"{var} = {base} + {offset}",
                     f"if not 0 <= {var} < {ref.size}: raise _TrapError("
                     f"'flat index out of bounds')"]
            return var, lines, ref
        raise self.unsup(f"load/store through a {kind[0]} value")

    def _emit_load(self, op, stat: _Stat) -> None:
        position, lines, ref = self._target_position(op.operands[0],
                                                     list(op.operands[1:]))
        stat.loads += 1
        stat.bytes_read += ref.elem_bytes
        for text in lines:
            self.line(text)
        conv = "float" if ref.is_float else "int"
        self._assign(op.results[0], f"{conv}({ref.flat}[{position}])")

    def _emit_store(self, op, stat: _Stat) -> None:
        position, lines, ref = self._target_position(op.operands[1],
                                                     list(op.operands[2:]))
        stat.stores += 1
        stat.bytes_written += ref.elem_bytes
        for text in lines:
            self.line(text)
        self.line(f"{ref.flat}[{position}] = {self.expr(op.operands[0])}")

    # -- SYCL ids and accessors ----------------------------------------------
    def _emit_constructor(self, op) -> None:
        kind = self.kind_of(op.operands[0])
        if kind[0] != "cell":
            raise self.unsup("sycl.constructor into a non-cell destination")
        cell = kind[1]
        comps = []
        for value in op.operands[1:]:
            if _scalar_int_type(value.type):
                comps.append(self.expr(value))
            else:
                comps.append(f"int({self.expr(value)})")
        self.scopes[-1].add(cell)
        self.cell_comps[cell] = comps

    def _cell_is_constructed(self, cell: str) -> bool:
        return any(cell in scope for scope in self.scopes)

    def _id_components(self, value) -> List[str]:
        """Component expressions of an evaluated id/range value."""
        kind = self.kind_of(value)
        if kind[0] in ("const", "scalar"):
            return [kind[1]]
        if kind[0] == "cell":
            cell = kind[1]
            if not self._cell_is_constructed(cell):
                # The interpreter would trap ("read of an unconstructed
                # SYCL id") or see a construction this emitter cannot
                # prove dominates the read; both are fallback cases.
                raise self.unsup(
                    "id read without a dominating sycl.constructor")
            return self.cell_comps[cell]
        raise self.unsup(f"id read of a {kind[0]} value")

    def _emit_component_get(self, op, what: str) -> None:
        comps = self._id_components(op.operands[0])
        rank = len(comps)
        dim = self.const_dim(op)
        if isinstance(dim, tuple):  # dynamic dimension operand
            source = f"({', '.join(comps)}{',' if rank == 1 else ''})"
            self._assign(op.results[0], f"_at({source}, {dim[1]}, "
                                        f"{what!r})")
            return
        if not 0 <= dim < rank:
            self.line(f"raise _TrapError('dimension {dim} out of range "
                      f"for {what} of rank {rank}')")
            self._assign(op.results[0], "0")
            return
        self.kinds[id(op.results[0])] = ("scalar", comps[dim])

    def _emit_range_size(self, op) -> None:
        comps = self._id_components(op.operands[0])
        self._assign(op.results[0], " * ".join(f"({c})" for c in comps))

    def _check_local(self) -> bool:
        """Emit the basic-launch trap for work-group queries; returns
        True when local/group positions exist."""
        if self.mode == "basic":
            self.line("raise _TrapError('work-group query on a kernel "
                      "launched without a local range')")
            return False
        return True

    def _item_operand(self, op) -> None:
        if self.kind_of(op.operands[0])[0] != "item":
            raise self.unsup("work-item query on a non-item value")

    def _emit_position(self, op, vars_, what: str,
                       require_local: bool) -> None:
        self._item_operand(op)
        if require_local and not self._check_local():
            self.kinds[id(op.results[0])] = ("scalar", "0")
            return
        dim = self.const_dim(op)
        rank = len(vars_)
        if isinstance(dim, tuple):
            comma = "," if rank == 1 else ""
            self._assign(op.results[0],
                         f"_at(({', '.join(vars_)}{comma}), {dim[1]}, "
                         f"{what!r})")
            return
        if not 0 <= dim < rank:
            self.line(f"raise _TrapError('dimension {dim} out of range for "
                      f"{what} of rank {rank}')")
            self._assign(op.results[0], "0")
            return
        self.kinds[id(op.results[0])] = ("scalar", vars_[dim])

    def _emit_linear(self, op, vars_, range_prefix: str,
                     require_local: bool) -> None:
        self._item_operand(op)
        if require_local and not self._check_local():
            self.kinds[id(op.results[0])] = ("scalar", "0")
            return
        rank = len(vars_)
        position = vars_[0] if rank else "0"
        for d in range(1, rank):
            position = f"({position}) * {range_prefix}{d} + {vars_[d]}"
        self._assign(op.results[0], position)

    def _emit_range_component(self, op, prefix: str, what: str,
                              require_local: bool) -> None:
        self._item_operand(op)
        if require_local and not self._check_local():
            self.kinds[id(op.results[0])] = ("scalar", "0")
            return
        rank = self.item_rank or 0
        dim = self.const_dim(op)
        if isinstance(dim, tuple):
            self._assign(op.results[0],
                         f"_at({prefix}, {dim[1]}, {what!r})")
            return
        if not 0 <= dim < rank:
            self.line(f"raise _TrapError('dimension {dim} out of range for "
                      f"{what} of rank {rank}')")
            self._assign(op.results[0], "0")
            return
        self.kinds[id(op.results[0])] = ("scalar", f"{prefix}{dim}")

    def _acc_of(self, value) -> _Acc:
        kind = self.kind_of(value)
        if kind[0] != "acc":
            raise self.unsup(
                f"accessor operation on a {kind[0]} value")
        return kind[1]

    def _emit_subscript(self, op) -> None:
        acc = self._acc_of(op.operands[0])
        var = acc.ref.flat[:-2]  # "a<i>_f" -> "a<i>"
        comps = self._id_components(op.operands[1])
        if len(comps) != acc.dims:
            self.line(f"raise _TrapError('accessor expects {acc.dims} "
                      f"indices, got {len(comps)}')")
            self.kinds[id(op.results[0])] = ("view", acc.ref, "0", False)
            return
        # Scoped CSE: an identical subscript of the same accessor in the
        # same (or an enclosing) block addresses the same element —
        # ``load C[i,j] ... store C[i,j]`` computes its position once.
        memo_key = (var, tuple(comps))
        for memo in self.memo_stack:
            hit = memo.get(memo_key)
            if hit is not None:
                self.kinds[id(op.results[0])] = hit
                return
        if acc.dims == 1:
            position = f"({comps[0]} + {var}_o0)"
            self.line(f"if not (0 <= {position} < {var}_m0): raise "
                      f"_TrapError('accessor index out of bounds for "
                      f"buffer of shape ' + repr({var}_mr))")
        else:
            abs_vars = []
            for k, comp in enumerate(comps):
                abs_var = self.fresh("q")
                self.line(f"{abs_var} = {comp} + {var}_o{k}")
                abs_vars.append(abs_var)
            checks = " and ".join(
                f"0 <= {a} < {var}_m{k}" for k, a in enumerate(abs_vars))
            self.line(f"if not ({checks}): raise _TrapError('accessor "
                      f"index out of bounds for buffer of shape ' + "
                      f"repr({var}_mr))")
            position = abs_vars[0]
            for k in range(1, acc.dims):
                position = f"({position}) * {var}_m{k} + {abs_vars[k]}"
            pos_var = self.fresh("q")
            self.line(f"{pos_var} = {position}")
            position = pos_var
        view = ("view", acc.ref, position, True)
        self.memo_stack[-1][memo_key] = view
        self.kinds[id(op.results[0])] = view

    def _emit_accessor_component(self, op) -> None:
        acc = self._acc_of(op.operands[0])
        var = acc.ref.flat[:-2]
        source, what = {
            "sycl.accessor.get_range": (f"{var}_ar", "the accessor range"),
            "sycl.accessor.get_mem_range": (f"{var}_mr",
                                            "the accessor mem range"),
            "sycl.accessor.get_offset": (f"{var}_off",
                                         "the accessor offset"),
        }[op.name]
        dim = self.const_dim(op)
        if isinstance(dim, tuple):
            self._assign(op.results[0],
                         f"_at({source}, {dim[1]}, {what!r})")
            return
        if not 0 <= dim < acc.dims:
            self.line(f"raise _TrapError('dimension {dim} out of range for "
                      f"{what} of rank {acc.dims}')")
            self._assign(op.results[0], "0")
            return
        if op.name == "sycl.accessor.get_mem_range":
            self.kinds[id(op.results[0])] = ("scalar", f"{var}_m{dim}")
        elif op.name == "sycl.accessor.get_offset":
            self.kinds[id(op.results[0])] = ("scalar", f"{var}_o{dim}")
        else:
            self._assign(op.results[0], f"{source}[{dim}]")

    def _emit_barrier(self, op, stat: _Stat) -> None:
        if self.mode in ("basic", "function"):
            self.line("raise _TrapError('sycl.group_barrier outside "
                      "work-group execution (launch the kernel with a "
                      "local range)')")
            return
        if not self.uses_generator:
            raise self.unsup(
                "barrier outside the nd-barrier compilation mode")
        stat.barriers += 1
        self.line("yield _BARRIER")


# ---------------------------------------------------------------------------
# Executable cache (in-memory LRU + optional DiskCache persistence)
# ---------------------------------------------------------------------------

@dataclass
class CompiledExecutable:
    """One compiled function: generated source plus its entry point."""

    kernel: str
    mode: str
    source: str
    entry: object
    origin: str = "fresh"  # "fresh" | "memory" | "disk"


class ExecutableCache:
    """Fingerprint-keyed cache of :class:`CompiledExecutable`.

    Keys are ``(text_fingerprint(printed function), "jit:<mode>")`` —
    the compile-cache key scheme — so a structurally identical function
    hits regardless of object identity, and a :class:`DiskCache` can
    persist the generated source under the same address (the source
    *is* the entry text; rehydration is ``compile()`` + ``exec``).
    """

    def __init__(self, max_entries: int = 128, disk=None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk = disk
        self._entries: "OrderedDict[Tuple[str, str], CompiledExecutable]" \
            = OrderedDict()
        self._keys_by_id: Dict[Tuple[int, str], Tuple[object, Tuple]] = {}
        self.stats = {"hits": 0, "misses": 0, "stores": 0,
                      "disk_hits": 0, "disk_stores": 0}

    def key_for(self, function, mode: str) -> Tuple[str, str]:
        """The cache key of ``function`` under ``mode``.

        Memoized per function object (the held reference keeps ``id``
        stable) — printing the IR on every launch would cost more than
        small kernels take to run.
        """
        from ..transforms.compile_cache import text_fingerprint

        memo_key = (id(function), mode)
        memo = self._keys_by_id.get(memo_key)
        if memo is not None and memo[0] is function:
            return memo[1]
        printed = Printer().print_op_to_string(function)
        key = (text_fingerprint(printed), f"jit:{mode}")
        if len(self._keys_by_id) > 4 * self.max_entries:
            self._keys_by_id.clear()
        self._keys_by_id[memo_key] = (function, key)
        return key

    def lookup(self, key) -> Optional[CompiledExecutable]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return entry

    def store(self, key, executable: CompiledExecutable) -> None:
        self._entries[key] = executable
        self._entries.move_to_end(key)
        self.stats["stores"] += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = dict(self.stats)
        info["entries"] = len(self._entries)
        if self.disk is not None:
            info["disk"] = self.disk.describe()
        return info


def compile_executable(function, mode: str,
                       cache: Optional[ExecutableCache] = None,
                       ) -> CompiledExecutable:
    """Compile ``function`` for ``mode``, through ``cache`` when given.

    Raises :class:`JITUnsupportedError` for uncompilable input and
    propagates :class:`~repro.faults.TransientFault` from the
    ``jit.compile`` fault point.
    """
    key = None
    if cache is not None:
        key = cache.key_for(function, mode)
        hit = cache.lookup(key)
        if hit is not None:
            return CompiledExecutable(hit.kernel, hit.mode, hit.source,
                                      hit.entry, origin="memory")
    source = None
    origin = "fresh"
    if cache is not None and cache.disk is not None:
        payload = cache.disk.load(key)
        if payload is not None:
            source = payload["text"]
            origin = "disk"
            cache.stats["disk_hits"] += 1
    injected = None
    if source is None:
        source = _Emitter(function, mode).emit()
        injected = fault_point(
            "jit.compile", key=key[0] if key else function.sym_name)
        if injected == "corrupt":
            source = ("def _run(_args, _GR, _LR, _PR, _counters, "
                      "_max_steps):\n    raise RuntimeError('injected "
                      "corrupt jit executable')\n")
    entry = None
    try:
        entry = _load_source(function, source)
    except SyntaxError:
        if origin != "disk":
            raise
        # A mangled disk entry that still passed its fingerprint (or an
        # emitter-version skew): evict it and compile cold.
        cache.disk.recover(key)
        source = _Emitter(function, mode).emit()
        origin = "fresh"
        entry = _load_source(function, source)
    executable = CompiledExecutable(function.sym_name, mode, source, entry,
                                    origin=origin)
    if cache is not None and injected is None:
        cache.store(key, executable)
        if cache.disk is not None and origin == "fresh":
            if cache.disk.store(key, source):
                cache.stats["disk_stores"] += 1
    return executable


def _load_source(function, source: str):
    code = compile(source, f"<repro-jit:{function.sym_name}>", "exec")
    namespace = _jit_namespace()
    exec(code, namespace)
    return namespace["_run"]


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

def _merge_counters(into, delta) -> None:
    for field_name, value in delta.as_dict().items():
        setattr(into, field_name, getattr(into, field_name) + value)


#: ``id(function)`` -> whether its body contains a group barrier.  The
#: walk is per-launch overhead otherwise; entries are evicted wholesale
#: once the table grows past the bound (function identity is stable for
#: the lifetime of a module, and a stale entry only costs a re-walk).
_BARRIER_MEMO: Dict[int, bool] = {}


def _contains_barrier(function) -> bool:
    key = id(function)
    cached = _BARRIER_MEMO.get(key)
    if cached is None:
        cached = any(op.name == "sycl.group_barrier"
                     for op in function.walk())
        if len(_BARRIER_MEMO) > 512:
            _BARRIER_MEMO.clear()
        _BARRIER_MEMO[key] = cached
    return cached


def _cache_of(engine) -> ExecutableCache:
    cache = engine.executable_cache
    if cache is None:
        cache = ExecutableCache()
        engine.executable_cache = cache
    return cache


@register_executor("jit")
class JITBackend(Backend):
    """Compile-to-Python tier: one generated function per kernel."""

    NAME = "jit"

    def _compile(self, engine, function, mode: str) -> CompiledExecutable:
        if _np is None:
            raise TierFallback("jit tier requires NumPy")
        try:
            return compile_executable(function, mode,
                                      cache=_cache_of(engine))
        except JITUnsupportedError as error:
            raise TierFallback(str(error)) from error
        except TransientFault as error:
            raise TierFallback(
                f"injected jit compile fault: {error}") from error

    def _pre_exec_faults(self, function) -> None:
        try:
            injected = fault_point("jit.exec", key=function.sym_name)
        except TransientFault as error:
            raise TierFallback(
                f"injected jit execution fault: {error}") from error
        if injected == "corrupt":
            raise TierFallback("injected corrupt jit execution state")

    def _invoke(self, executable, function, run_args, gr, lr, pr,
                counters, max_steps):
        try:
            executable.entry(run_args, gr, lr, pr, counters, max_steps)
        except (TrapError, TransientFault):
            raise
        except _GuardFallback as guard:
            # Prologue guards fire before any side effect.
            raise TierFallback(str(guard)) from guard
        except OverflowError as error:
            raise TrapError(
                f"value exceeds the range of the storage element: "
                f"{error}") from None
        except InterpreterError:
            raise
        except Exception as error:  # noqa: BLE001 - degradation boundary
            raise JITExecutionError(
                f"generated executable for '{function.sym_name}' failed: "
                f"{error!r}") from error

    def launch(self, engine, function, values, global_size,
               local_size=None, interpreter=None):
        from .interpreter import Interpreter, LaunchResult
        from ..runtime.ndrange import NDRange, Range

        interp = interpreter or Interpreter(engine.module,
                                            max_steps=engine.max_steps)
        global_range = global_size if isinstance(global_size, Range) \
            else Range(global_size)
        local_range = group_range = None
        if local_size is not None:
            nd_range = NDRange(global_range, local_size if isinstance(
                local_size, Range) else Range(local_size))
            local_range = nd_range.local_range
            group_range = nd_range.group_range
        if local_range is None:
            mode = "basic"
        else:
            mode = "nd-barrier" if _contains_barrier(function) else "nd"
        executable = self._compile(engine, function, mode)
        plan = interp._bind_arguments(function, values)
        run_args = [None if entry[0] == "item" else entry[1]
                    for entry in plan]
        self._pre_exec_faults(function)
        from .memory import ExecutionCounters

        counters = ExecutionCounters()
        self._invoke(executable, function, run_args, tuple(global_range),
                     tuple(local_range) if local_range else None,
                     tuple(group_range) if group_range else None,
                     counters, engine.max_steps)
        # Mirror Interpreter.launch: cumulative interpreter counters
        # advance too, the result reports this launch's delta.
        _merge_counters(interp.counters, counters)
        return LaunchResult(function.sym_name, global_range.size(),
                            counters)

    def call(self, engine, function, values, interpreter=None):
        from .memory import ExecutionCounters

        executable = self._compile(engine, function, "function")
        self._pre_exec_faults(function)
        counters = ExecutionCounters()
        run_args = list(values)
        try:
            results = executable.entry(run_args, None, None, None,
                                       counters, engine.max_steps)
        except (TrapError, TransientFault):
            raise
        except _GuardFallback as guard:
            raise TierFallback(str(guard)) from guard
        except OverflowError as error:
            raise TrapError(
                f"value exceeds the range of the storage element: "
                f"{error}") from None
        except InterpreterError:
            raise
        except Exception as error:  # noqa: BLE001 - degradation boundary
            raise JITExecutionError(
                f"generated executable for '{function.sym_name}' failed: "
                f"{error!r}") from error
        if interpreter is not None:
            _merge_counters(interpreter.counters, counters)
        return list(results), counters
