"""A region-based IR interpreter with SYCL kernel-launch semantics.

The interpreter evaluates a module directly on its in-memory IR: every
operation is dispatched to the evaluator its dialect registered
(:mod:`repro.interp.registry`), with
:class:`repro.ir.InterpretableOpInterface` as the fallback.  Two modes:

* :meth:`Interpreter.call` executes an ordinary function with Python
  argument values (scalars, :class:`~repro.interp.memory.MemRefStorage`);
* :meth:`Interpreter.launch` executes a SYCL kernel function once per
  work item of a ``Range`` / ``NDRange``, binding accessor arguments to
  :class:`repro.runtime.buffer.Buffer` data.

**Barrier model.** Work-item execution is compiled into Python
generators: every region evaluator delegates with ``yield from``, so a
``sycl.group_barrier`` anywhere in the call tree suspends the whole work
item.  Within a work-group the launcher round-robins the item generators
between barriers — all unfinished items must reach the barrier before
any proceeds — which gives transformed kernels that communicate through
work-group local memory (Loop Internalization tiles) their real
semantics.  Work-group-local ``memref.alloc``\\ s are shared per group
(keyed by the allocating operation), groups execute sequentially.

**Numeric model.** Integers are Python ints (arbitrary precision — no
wrap-around except ``arith.trunci``); floats are Python floats (IEEE
binary64) but memref/buffer storage rounds through the element type's
NumPy dtype, so ``f32`` data behaves like ``f32`` at every memory
boundary.  See ``docs/interpreter.md`` for the full contract.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..ir import (
    DenseElementsAttr,
    InterpretableOpInterface,
    MemRefType,
    Operation,
    parse_type,
)
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..dialects.sycl import (
    AccessorType,
    ItemType,
    NDItemType,
    accessor_type_of,
)
from ..runtime.accessor import Accessor, LocalAccessor
from ..runtime.buffer import Buffer
from ..runtime.ndrange import NDRange, Range
from .memory import (
    BARRIER,
    AccessorBinding,
    BlockResult,
    ExecutionCounters,
    GroupContext,
    InterpreterError,
    MemRefStorage,
    TrapError,
    WorkItemBinding,
)
from .registry import lookup_evaluator


def _item_argument_type(type_) -> Optional[object]:
    """The ``ItemType``/``NDItemType`` behind a kernel argument, if any."""
    inner = type_.element_type if isinstance(type_, MemRefType) else type_
    if isinstance(inner, (ItemType, NDItemType)):
        return inner
    return None


def _element_type_for_dtype(dtype):
    """Best-effort IR element type for a NumPy dtype (local accessors)."""
    from ..ir import FloatType, IntegerType, f32

    try:
        import numpy as np

        resolved = np.dtype(dtype)
    except (ImportError, TypeError):
        return f32()
    if resolved.kind == "f":
        return FloatType(resolved.itemsize * 8)
    if resolved.kind in ("i", "u", "b"):
        return IntegerType(max(8, resolved.itemsize * 8))
    return f32()


class EvalContext:
    """Execution state of one function activation (one work item's frame).

    This is the object evaluators receive as ``ctx``: it resolves SSA
    values, executes nested blocks, performs calls and exposes the
    current work item / work group.
    """

    __slots__ = ("interpreter", "env", "work_item", "group")

    def __init__(self, interpreter: "Interpreter",
                 env: Optional[Dict[int, object]] = None,
                 work_item: Optional[WorkItemBinding] = None,
                 group: Optional[GroupContext] = None):
        self.interpreter = interpreter
        self.env = env if env is not None else {}
        self.work_item = work_item
        self.group = group

    # -- SSA environment -----------------------------------------------------
    def value_of(self, value) -> object:
        try:
            return self.env[id(value)]
        except KeyError:
            raise InterpreterError(
                f"use of undefined SSA value {value!r} (verifier should "
                "have rejected this module)") from None

    def bind(self, value, result) -> None:
        self.env[id(value)] = result

    @property
    def counters(self) -> ExecutionCounters:
        return self.interpreter.counters

    @property
    def module(self) -> Optional[ModuleOp]:
        return self.interpreter.module

    # -- execution -----------------------------------------------------------
    def _dispatch(self, op: Operation):
        """Evaluate one operation; plain call, no generator frame.

        Returns the evaluator's raw result: a sequence of values, a
        :class:`BlockResult`, or a generator (region/barrier evaluators)
        the caller must drive with ``yield from``.
        """
        self.interpreter._step(op)
        args = [self.value_of(operand) for operand in op.operands]
        evaluator = lookup_evaluator(op.name)
        if evaluator is not None:
            return evaluator(self, op, args)
        if isinstance(op, InterpretableOpInterface):
            return op.interpret(args, self)
        raise InterpreterError(
            f"no evaluator registered for '{op.name}' (register one "
            "with repro.interp.register_evaluator or implement "
            "InterpretableOpInterface)")

    def _bind_results(self, op: Operation, results) -> Optional[BlockResult]:
        if isinstance(results, BlockResult):
            return results
        results = tuple(results) if results is not None else ()
        if len(results) != len(op.results):
            raise InterpreterError(
                f"evaluator for '{op.name}' produced {len(results)} "
                f"values for {len(op.results)} results")
        for res, value in zip(op.results, results):
            self.env[id(res)] = value
        return None

    def exec_block(self, block, args: Sequence[object] = ()) -> object:
        """Generator: run ``block`` with ``args`` bound to its arguments.

        Returns the terminating :class:`BlockResult` (``"fallthrough"``
        when the block has no terminator evaluator signalling one).
        Only evaluators that actually return a generator (region ops,
        barriers) cost a ``yield from`` — plain ops are evaluated with
        an ordinary call, keeping the dispatch loop flat.
        """
        if len(args) != len(block.arguments):
            raise InterpreterError(
                f"block expects {len(block.arguments)} arguments, got "
                f"{len(args)}")
        for block_arg, value in zip(block.arguments, args):
            self.env[id(block_arg)] = value
        op = block.first_op
        while op is not None:
            results = self._dispatch(op)
            if isinstance(results, GeneratorType):
                results = yield from results
            outcome = self._bind_results(op, results)
            if outcome is not None:
                return outcome
            op = op.next_op()
        return BlockResult("fallthrough", ())

    def invoke(self, func: FuncOp, args: Sequence[object]) -> object:
        """Generator: execute ``func`` in a fresh frame; returns its
        result values.

        Function bodies may be multi-block CFGs (after
        ``convert-scf-to-cf``): a block ending in a ``"branch"`` outcome
        transfers control to the successor block here, so barriers keep
        suspending the whole work item through arbitrary branch chains.
        """
        interp = self.interpreter
        if func.is_declaration:
            raise InterpreterError(
                f"cannot execute declaration '{func.sym_name}'")
        if len(args) != len(func.arguments):
            raise InterpreterError(
                f"function '{func.sym_name}' expects "
                f"{len(func.arguments)} arguments, got {len(args)}")
        interp._enter_call()
        try:
            frame = EvalContext(interp, None, self.work_item, self.group)
            outcome = yield from frame.exec_block(func.body, list(args))
            while outcome.kind == "branch":
                # A runaway CFG loop is bounded by max_steps: every
                # branch terminator was itself dispatched via _step.
                target, branch_args = outcome.values
                outcome = yield from frame.exec_block(
                    target, list(branch_args))
        finally:
            interp._exit_call()
        if outcome.kind == "return":
            return list(outcome.values)
        if outcome.kind == "fallthrough":
            return []
        raise InterpreterError(
            f"function '{func.sym_name}' ended with unexpected "
            f"'{outcome.kind}' terminator")

    def call(self, callee: str, args: Sequence[object]) -> object:
        """Generator: call function symbol ``callee`` (used by the
        ``func.call`` evaluator)."""
        func = self.interpreter.lookup_function(callee)
        self.counters.calls += 1
        results = yield from self.invoke(func, args)
        return results

    # -- group-local memory ---------------------------------------------------
    def local_storage_for(self, op: Operation,
                          memref_type: MemRefType) -> MemRefStorage:
        """Per-work-group storage for a local ``memref.alloc`` — every
        work item of the group resolves ``op`` to the same tile."""
        if self.group is None:
            return MemRefStorage.for_type(memref_type)
        storage = self.group.local_allocs.get(id(op))
        if storage is None:
            storage = MemRefStorage.for_type(memref_type)
            self.group.local_allocs[id(op)] = storage
        return storage


@dataclass
class LaunchResult:
    """Outcome of a kernel launch."""

    kernel: str
    num_work_items: int
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)


class Interpreter:
    """Evaluates functions and kernels of one module.

    ``max_steps`` bounds the total number of op evaluations (a runaway
    loop raises :class:`TrapError` instead of hanging the process).
    """

    def __init__(self, module: Optional[ModuleOp] = None,
                 max_steps: int = 10_000_000,
                 max_call_depth: int = 200):
        self.module = module
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.counters = ExecutionCounters()
        self._steps = 0
        self._call_depth = 0
        self._globals: Dict[str, MemRefStorage] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _step(self, op: Operation) -> None:
        self._steps += 1
        self.counters.ops += 1
        if self._steps > self.max_steps:
            raise TrapError(
                f"exceeded the interpreter step budget ({self.max_steps} "
                f"ops) at '{op.name}'")

    def _enter_call(self) -> None:
        self._call_depth += 1
        if self._call_depth > self.max_call_depth:
            raise TrapError(
                f"exceeded maximum call depth ({self.max_call_depth})")

    def _exit_call(self) -> None:
        self._call_depth -= 1

    # -- lookup --------------------------------------------------------------
    def lookup_function(self, name: Union[str, FuncOp]) -> FuncOp:
        from ..dialects.llvm import LLVMFuncOp

        if isinstance(name, (FuncOp, LLVMFuncOp)):
            return name
        if self.module is None:
            raise InterpreterError(
                "interpreter has no module to resolve symbols in")
        func = self.module.lookup_symbol(name)
        if not isinstance(func, (FuncOp, LLVMFuncOp)):
            raise InterpreterError(
                f"no function named '{name}' in the module")
        return func

    def global_storage(self, name: str) -> MemRefStorage:
        """Storage backing ``memref.global @name`` (materialized once)."""
        storage = self._globals.get(name)
        if storage is not None:
            return storage
        if self.module is None:
            raise InterpreterError("no module to resolve globals in")
        global_op = self.module.lookup_symbol(name)
        if global_op is None:
            raise InterpreterError(f"unknown memref.global '{name}'")
        memref_type = getattr(global_op, "memref_type", None)
        initial = global_op.attributes.get("initial_value")
        if memref_type is None and isinstance(initial, DenseElementsAttr):
            memref_type = MemRefType(initial.shape, initial.element_type)
        if memref_type is None:
            type_text = global_op.get_str_attr("type")
            if type_text:
                parsed = parse_type(type_text)
                if isinstance(parsed, MemRefType):
                    memref_type = parsed
        if memref_type is None:
            raise InterpreterError(
                f"cannot determine the type of memref.global '{name}'")
        storage = MemRefStorage.for_type(memref_type)
        if isinstance(initial, DenseElementsAttr):
            storage.fill_from(initial.values)
        self._globals[name] = storage
        return storage

    def materialize_globals(self) -> None:
        """Create storage for every ``memref.global`` up front.

        The differential harness calls this so pre- and post-pipeline
        executions snapshot the same set of globals even when a pass
        removes every access to one (lazy materialization would then
        produce mismatched key sets).  Globals whose type cannot be
        determined are skipped — executing an access to one still
        raises.
        """
        if self.module is None:
            return
        for op in self.module.walk():
            if op.name == "memref.global":
                name = op.get_str_attr("sym_name")
                if not name:
                    continue
                try:
                    self.global_storage(name)
                except InterpreterError:
                    continue

    def global_snapshots(self) -> Dict[str, MemRefStorage]:
        """Materialized global storages by symbol name."""
        return dict(self._globals)

    # -- plain function execution --------------------------------------------
    def call(self, func: Union[str, FuncOp],
             args: Sequence[object] = ()) -> List[object]:
        """Execute a function with already-prepared argument values."""
        function = self.lookup_function(func)
        ctx = EvalContext(self)
        return self._drain(ctx.invoke(function, list(args)))

    @staticmethod
    def _drain(gen) -> List[object]:
        while True:
            try:
                signal = next(gen)
            except StopIteration as stop:
                return stop.value if stop.value is not None else []
            if signal is BARRIER:
                raise TrapError(
                    "sycl.group_barrier outside a work-group launch")
            raise InterpreterError(f"unexpected signal {signal!r}")

    # -- kernel launch --------------------------------------------------------
    def launch(self, kernel: Union[str, FuncOp],
               args: Sequence[object],
               global_size: Union[Range, Sequence[int], int],
               local_size: Union[Range, Sequence[int], int, None] = None,
               ) -> LaunchResult:
        """Deprecated shim: use ``ExecutionEngine.launch`` instead.

        Kept for one release; delegates to :meth:`_launch` (the
        interpreter-tier implementation the engine calls directly).
        """
        from .engine import _warn_deprecated

        _warn_deprecated("Interpreter.launch", "ExecutionEngine.launch")
        return self._launch(kernel, args, global_size, local_size)

    def _launch(self, kernel: Union[str, FuncOp],
                args: Sequence[object],
                global_size: Union[Range, Sequence[int], int],
                local_size: Union[Range, Sequence[int], int, None] = None,
                ) -> LaunchResult:
        """Execute ``kernel`` once per work item.

        ``args`` supplies, in order, the values for every non-item kernel
        argument: runtime :class:`Accessor`/:class:`Buffer` objects for
        accessor parameters, :class:`LocalAccessor` for local-memory
        parameters, scalars for the rest.  ``local_size`` enables
        work-group semantics (barriers, shared local memory).
        """
        function = self.lookup_function(kernel)
        global_range = global_size if isinstance(global_size, Range) \
            else Range(global_size)
        local_range: Optional[Range] = None
        group_range: Optional[Range] = None
        if local_size is not None:
            nd_range = NDRange(global_range, local_size if isinstance(
                local_size, Range) else Range(local_size))
            local_range = nd_range.local_range
            group_range = nd_range.group_range

        plan = self._bind_arguments(function, args)
        result = LaunchResult(function.sym_name,
                              global_range.size())
        before = self.counters.as_dict()
        if local_range is None:
            self._launch_basic(function, plan, global_range)
        else:
            self._launch_nd(function, plan, global_range, local_range,
                            group_range)
        # A per-launch delta: Interpreter.counters keeps the cumulative
        # totals, the LaunchResult reports only this launch's work.
        after = self.counters.as_dict()
        result.counters = ExecutionCounters(
            **{key: after[key] - before[key] for key in after})
        return result

    # An argument plan entry is either ("item",), ("value", v) or
    # ("local", LocalAccessor).
    def _bind_arguments(self, function: FuncOp,
                        args: Sequence[object]) -> List[Tuple]:
        provided = list(args)
        plan: List[Tuple] = []
        for argument in function.arguments:
            if _item_argument_type(argument.type) is not None:
                plan.append(("item",))
                continue
            if not provided:
                raise InterpreterError(
                    f"kernel '{function.sym_name}' needs a value for "
                    f"argument %{argument.name_hint or argument.arg_index}")
            value = provided.pop(0)
            accessor_type = accessor_type_of(argument)
            if isinstance(value, LocalAccessor):
                plan.append(("local", value))
                continue
            if isinstance(value, Buffer):
                value = Accessor(value)
            if isinstance(value, Accessor):
                element = accessor_type.element_type \
                    if isinstance(accessor_type, AccessorType) else None
                value = AccessorBinding(value, element)
            plan.append(("value", value))
        if provided:
            raise InterpreterError(
                f"kernel '{function.sym_name}' received "
                f"{len(provided)} extra argument(s)")
        return plan

    def _item_args(self, plan: List[Tuple], item: WorkItemBinding,
                   local_storages: Dict[int, MemRefStorage]) -> List[object]:
        values: List[object] = []
        for entry in plan:
            if entry[0] == "item":
                values.append(item)
            elif entry[0] == "local":
                values.append(local_storages[id(entry[1])])
            else:
                values.append(entry[1])
        return values

    def _local_storages(self, plan: List[Tuple]) -> Dict[int, MemRefStorage]:
        storages: Dict[int, MemRefStorage] = {}
        for entry in plan:
            if entry[0] == "local":
                local = entry[1]
                storages[id(local)] = MemRefStorage(
                    local.shape, _element_type_for_dtype(local.dtype),
                    "local")
        return storages

    def _item_generator(self, function: FuncOp, plan: List[Tuple],
                        item: WorkItemBinding,
                        group: Optional[GroupContext],
                        local_storages: Dict[int, MemRefStorage]):
        ctx = EvalContext(self, None, item, group)
        self.counters.work_items += 1
        args = self._item_args(plan, item, local_storages)
        yield from ctx.invoke(function, args)

    def _launch_basic(self, function: FuncOp, plan: List[Tuple],
                      global_range: Range) -> None:
        if any(entry[0] == "local" for entry in plan):
            # SYCL local accessors only exist for nd_range kernels; a
            # shared tile across a plain range launch would leak state
            # between work items.
            raise TrapError(
                "a LocalAccessor argument requires a work-group launch "
                "(pass local_size)")
        local_storages: Dict[int, MemRefStorage] = {}
        for point in itertools.product(*(range(e) for e in global_range)):
            item = WorkItemBinding(global_id=point,
                                   global_range=tuple(global_range))
            self._drain(self._item_generator(function, plan, item, None,
                                             local_storages))

    def _launch_nd(self, function: FuncOp, plan: List[Tuple],
                   global_range: Range, local_range: Range,
                   group_range: Range) -> None:
        for group_id in itertools.product(
                *(range(e) for e in group_range)):
            group = GroupContext(group_id=group_id)
            local_storages = self._local_storages(plan)
            generators = []
            for local_id in itertools.product(
                    *(range(e) for e in local_range)):
                global_id = tuple(g * l + i for g, l, i in
                                  zip(group_id, local_range, local_id))
                item = WorkItemBinding(
                    global_id=global_id,
                    global_range=tuple(global_range),
                    local_id=local_id,
                    local_range=tuple(local_range),
                    group_id=group_id,
                    group_range=tuple(group_range))
                generators.append(self._item_generator(
                    function, plan, item, group, local_storages))
            self._run_group(generators)

    @staticmethod
    def _run_group(generators: Iterable) -> None:
        """Round-robin the work-item generators of one group: advance
        each to its next barrier (or completion); repeat until all are
        done.  A barrier releases once every unfinished item reached it."""
        active = list(generators)
        while active:
            arrived = []
            for gen in active:
                try:
                    signal = next(gen)
                except StopIteration:
                    continue
                if signal is BARRIER:
                    arrived.append(gen)
                else:
                    raise InterpreterError(
                        f"unexpected signal {signal!r} from a work item")
            active = arrived
