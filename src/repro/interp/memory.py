"""Memory model and runtime bindings of the IR interpreter.

The interpreter's memory objects bridge the gap between IR-level types
and the host runtime (:mod:`repro.runtime`):

* a :class:`MemRefStorage` backs every ``memref`` value — NumPy arrays
  for scalar element types, Python lists for aggregate elements such as
  ``!sycl_id_3`` tuples (lists also serve as the scalar fallback when
  NumPy is absent, though the runtime ``Buffer`` layer — and therefore
  kernel launches over accessors — requires NumPy);
* a :class:`MemRefView` is a rank-1 window into a storage, produced by
  ``sycl.accessor.subscript`` / ``sycl.accessor.get_pointer`` (element 0
  of the view is the addressed element, matching the dialect contract);
* an :class:`AccessorBinding` wires a kernel accessor argument to a
  :class:`repro.runtime.buffer.Buffer` through a
  :class:`repro.runtime.accessor.Accessor`, so interpreted kernels move
  data through the same host<->device transfer accounting the runtime
  models;
* a :class:`WorkItemBinding` carries the ND-range position of the work
  item currently executing (``sycl.nd_item.get_global_id`` et al. read
  it).

Control-flow signalling types (:class:`BlockResult`, :data:`BARRIER`)
live here too so dialect evaluators need only this module and
:mod:`repro.interp.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import FloatType, IndexType, IntegerType, MemRefType, Type, is_float


_linearize_impl = None


def linearize(indices, extents) -> int:
    """Row-major linearization — the runtime's single implementation.

    Resolved lazily (then cached): ``repro.runtime``'s package init
    pulls in NumPy, which this module must not require at import time
    (dialect modules import it to register evaluators), and this sits on
    the per-work-item query hot path.
    """
    global _linearize_impl
    if _linearize_impl is None:
        from ..runtime.ndrange import linearize as _impl

        _linearize_impl = _impl
    return _linearize_impl(indices, extents)

try:  # pragma: no cover - numpy ships with the project, lists are the fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class InterpreterError(Exception):
    """Raised when a module cannot be (further) interpreted."""


class TrapError(InterpreterError):
    """A well-formed program performed an invalid operation at runtime
    (out-of-bounds access, division by zero, exceeded step budget)."""


# ---------------------------------------------------------------------------
# Control-flow signals
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockResult:
    """Outcome of executing a block.

    ``kind`` is ``"return"`` (``func.return``), ``"yield"`` (``scf.yield``
    / ``affine.yield``), ``"condition"`` (``scf.condition``; ``values[0]``
    is the flag), ``"branch"`` (``cf.br``/``cf.cond_br``; ``values`` is
    ``(target_block, arg_values)`` and the function-level dispatch loop
    follows it) or ``"fallthrough"`` for blocks without a terminator.
    """

    kind: str
    values: Tuple = ()


class _BarrierSignal:
    """Yielded by ``sycl.group_barrier`` to suspend the work item."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<work-group barrier>"


#: The singleton barrier signal work-item generators yield.
BARRIER = _BarrierSignal()


# ---------------------------------------------------------------------------
# Element sizes
# ---------------------------------------------------------------------------

def byte_size_of(type_: Type) -> int:
    """Modelled byte size of a scalar element (index counts as 64-bit)."""
    if isinstance(type_, IntegerType):
        return max(1, type_.width // 8)
    if isinstance(type_, FloatType):
        return type_.width // 8
    if isinstance(type_, IndexType):
        return 8
    return 8


def _numpy_dtype(element_type: Type):
    if _np is None:
        return None
    if isinstance(element_type, FloatType):
        return _np.float64 if element_type.width == 64 else _np.float32
    if isinstance(element_type, (IntegerType, IndexType)):
        return _np.int64
    return None


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

class MemRefStorage:
    """Backing store for one ``memref`` value.

    Scalar element types are held in a NumPy array (or a flat Python list
    when NumPy is absent); aggregate elements (SYCL ids built by
    ``sycl.constructor``) always use a flat Python list.
    """

    def __init__(self, shape: Sequence[int], element_type: Type,
                 memory_space: str = "global",
                 array=None):
        self.shape = tuple(int(d) for d in shape)
        if any(d < 0 for d in self.shape):
            raise InterpreterError(
                "cannot allocate a memref with dynamic shape "
                f"{self.shape}; provide a static shape")
        self.element_type = element_type
        self.memory_space = memory_space
        self.element_bytes = byte_size_of(element_type)
        total = 1
        for dim in self.shape:
            total *= dim
        self._size = total
        if array is not None:
            self._array = array
            self._list = None
        else:
            dtype = _numpy_dtype(element_type)
            if dtype is not None:
                self._array = _np.zeros(self.shape, dtype=dtype)
                self._list = None
            else:
                self._array = None
                self._list = [None] * total
        # Flat *view* cached once: element accesses are the interpreter's
        # hottest path, and reshape(-1) per access allocates a fresh view
        # object.  Backing arrays are freshly allocated (or Buffer device
        # arrays), hence contiguous, so this is a view, never a copy.
        self._flat = self._array.reshape(-1) if self._array is not None \
            else None

    # -- indexing -----------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def _linear(self, indices: Sequence[int]) -> int:
        if len(indices) != len(self.shape):
            raise TrapError(
                f"rank mismatch: {len(indices)} indices into a "
                f"{len(self.shape)}-d memref")
        linear = 0
        for idx, extent in zip(indices, self.shape):
            idx = int(idx)
            if not 0 <= idx < extent:
                raise TrapError(
                    f"index {tuple(int(i) for i in indices)} out of bounds "
                    f"for memref of shape {self.shape}")
            linear = linear * extent + idx
        return linear

    def load(self, indices: Sequence[int]):
        return self.load_flat(self._linear(indices))

    def store(self, indices: Sequence[int], value) -> None:
        self.store_flat(self._linear(indices), value)

    def load_flat(self, linear: int):
        linear = int(linear)
        if not 0 <= linear < self._size:
            raise TrapError(
                f"flat index {linear} out of bounds for memref of "
                f"{self._size} elements")
        if self._flat is not None:
            raw = self._flat[linear]
            return float(raw) if is_float(self.element_type) else int(raw)
        return self._list[linear]

    def store_flat(self, linear: int, value) -> None:
        linear = int(linear)
        if not 0 <= linear < self._size:
            raise TrapError(
                f"flat index {linear} out of bounds for memref of "
                f"{self._size} elements")
        if self._flat is not None:
            try:
                self._flat[linear] = value
            except OverflowError:
                raise TrapError(
                    f"value {value!r} exceeds the range of the "
                    f"{self.element_type} storage element") from None
        else:
            self._list[linear] = value

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> List:
        """Flat list copy of the contents (used by the differential
        harness for comparisons)."""
        if self._flat is not None:
            cast = float if is_float(self.element_type) else int
            return [cast(v) for v in self._flat]
        return list(self._list)

    def fill_from(self, values: Sequence) -> None:
        for i, value in enumerate(values):
            self.store_flat(i, value)

    @classmethod
    def for_type(cls, memref_type: MemRefType) -> "MemRefStorage":
        return cls(memref_type.shape, memref_type.element_type,
                   memref_type.memory_space)

    def __repr__(self) -> str:
        return (f"<MemRefStorage {self.shape} x {self.element_type} "
                f"({self.memory_space})>")


class MemRefView:
    """A rank-1 flat window into a :class:`MemRefStorage`.

    ``view.load([i])`` reads ``storage.flat[base + i]`` — the shape the
    ``sycl.accessor.subscript`` / ``sycl.accessor.get_pointer`` results
    take (their element 0 is the addressed element).
    """

    def __init__(self, storage: MemRefStorage, base: int = 0):
        self.storage = storage
        self.base = int(base)
        self.element_type = storage.element_type
        self.element_bytes = storage.element_bytes
        self.memory_space = storage.memory_space

    @property
    def size(self) -> int:
        """Elements reachable through the view (to the storage's end)."""
        return self.storage.size - self.base

    def load(self, indices: Sequence[int]):
        offset = int(indices[0]) if indices else 0
        return self.storage.load_flat(self.base + offset)

    def store(self, indices: Sequence[int], value) -> None:
        offset = int(indices[0]) if indices else 0
        self.storage.store_flat(self.base + offset, value)

    def load_flat(self, linear: int):
        return self.storage.load_flat(self.base + int(linear))

    def store_flat(self, linear: int, value) -> None:
        self.storage.store_flat(self.base + int(linear), value)

    def __repr__(self) -> str:
        return f"<MemRefView base={self.base} of {self.storage!r}>"


# ---------------------------------------------------------------------------
# Kernel argument bindings
# ---------------------------------------------------------------------------

class AccessorBinding:
    """An accessor kernel argument, backed by a runtime ``Accessor``.

    The storage is the buffer's *device* array (obtained through
    ``Buffer.device_array``), so interpreted kernel launches feed the
    same host<->device transfer accounting the runtime models.
    """

    def __init__(self, accessor, element_type: Optional[Type] = None):
        from ..runtime.accessor import Accessor  # local: keep import light

        if not isinstance(accessor, Accessor):
            raise InterpreterError(
                f"AccessorBinding expects a runtime Accessor, got "
                f"{accessor!r}")
        self.accessor = accessor
        array = accessor.buffer.device_array(writable=accessor.writes)
        elem = element_type or FloatType(32)
        self.storage = MemRefStorage(array.shape, elem, "global", array=array)
        self.mem_range = tuple(int(d) for d in accessor.buffer.shape)
        self.offset = tuple(accessor.effective_offset())
        self.access_range = tuple(accessor.effective_range())

    @property
    def dimensions(self) -> int:
        return len(self.mem_range)

    def linear_offset(self, indices: Sequence[int]) -> int:
        """Row-major flat offset of ``indices`` (accessor-relative; the
        accessor offset is applied here)."""
        if len(indices) != self.dimensions:
            raise TrapError(
                f"accessor expects {self.dimensions} indices, got "
                f"{len(indices)}")
        linear = 0
        for idx, off, extent in zip(indices, self.offset, self.mem_range):
            absolute = int(idx) + off
            if not 0 <= absolute < extent:
                raise TrapError(
                    f"accessor index {tuple(int(i) for i in indices)} out "
                    f"of bounds for buffer of shape {self.mem_range}")
            linear = linear * extent + absolute
        return linear

    def base_linear_offset(self) -> int:
        """Flat offset of the accessor's zero index.

        Row-major linearization is linear in the indices, so a raw
        pointer based here plus ``linearize(id, mem_range)`` addresses
        exactly what ``subscript(id)`` does — which is what makes the
        accessor-lowering rewrite (``lower-sycl-accessors``) semantics
        preserving for ranged accessors.
        """
        return linearize(self.offset, self.mem_range)

    def __repr__(self) -> str:
        return f"<AccessorBinding {self.accessor!r}>"


@dataclass
class WorkItemBinding:
    """ND-range position of the executing work item.

    For a plain ``range`` launch (``sycl::item`` kernels) the local /
    group fields are ``None`` and the corresponding queries trap.
    """

    global_id: Tuple[int, ...]
    global_range: Tuple[int, ...]
    local_id: Optional[Tuple[int, ...]] = None
    local_range: Optional[Tuple[int, ...]] = None
    group_id: Optional[Tuple[int, ...]] = None
    group_range: Optional[Tuple[int, ...]] = None

    def global_linear_id(self) -> int:
        return linearize(self.global_id, self.global_range)

    def local_linear_id(self) -> int:
        if self.local_id is None:
            raise TrapError("kernel was launched without a local range")
        return linearize(self.local_id, self.local_range)


@dataclass
class GroupContext:
    """Shared state of one work-group during a kernel launch.

    ``local_allocs`` maps ``id(alloc op) -> storage`` so a
    work-group-local ``memref.alloc`` executed by every work item
    resolves to one shared tile per group (the Loop Internalization
    contract).
    """

    group_id: Tuple[int, ...]
    local_allocs: Dict[int, MemRefStorage] = field(default_factory=dict)


@dataclass
class ExecutionCounters:
    """What an interpretation executed (feeds ``repro-run --cost-report``
    and the interpreter benchmark scenarios)."""

    ops: int = 0
    loads: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    barriers: int = 0
    work_items: int = 0
    calls: int = 0

    def count_load(self, element_bytes: int) -> None:
        self.loads += 1
        self.bytes_read += element_bytes

    def count_store(self, element_bytes: int) -> None:
        self.stores += 1
        self.bytes_written += element_bytes

    def as_dict(self) -> Dict[str, int]:
        return {
            "ops": self.ops,
            "loads": self.loads,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "barriers": self.barriers,
            "work_items": self.work_items,
            "calls": self.calls,
        }
