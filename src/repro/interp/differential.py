"""Differential execution: prove a pass pipeline preserved semantics.

The harness executes every executable function of a module *before* a
pipeline runs and again *after*, on identically synthesized inputs, and
asserts the outputs match — bit-identical for integers, tolerance-equal
for floats (optimizations such as Detect Reduction legitimately
reassociate float arithmetic).  "Optimized != miscompiled" becomes a
machine-checked property instead of a printed-IR eyeball.

Input synthesis is **deterministic** (seeded by CRC32 of the function /
argument names, never by ``random``), and the launch configuration is
resolved once from the *pre*-pipeline module and reused verbatim for the
post-pipeline run, so both sides observe exactly the same data even when
the pipeline rewrites kernel bodies (e.g. Loop Internalization adding
barriers and local tiles).

Entry points:

* :func:`run_differential` — the pre/post comparison; raises
  :class:`DifferentialError` on any mismatch.  ``tier`` selects the
  execution tier (``"interp"``, ``"jit"``, ``"vector"`` or ``"auto"``)
  both sides run on, so the harness doubles as the jit-vs-interp
  equivalence oracle;
* :func:`execute_module` / :func:`execute_function` — deprecated shims
  over :class:`~repro.interp.engine.ExecutionEngine` (``execute_module``
  / ``execute``), kept for one release.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    is_float,
)
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..dialects.sycl import AccessorType, ItemType, NDItemType
from ..runtime.accessor import Accessor
from ..runtime.buffer import Buffer
from .interpreter import _item_argument_type
from .memory import (
    InterpreterError,
    MemRefStorage,
    TrapError,
    _numpy_dtype,
)

try:  # pragma: no cover - numpy ships with the project
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class DifferentialError(AssertionError):
    """Pre- and post-pipeline executions disagreed (a miscompile)."""


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

@dataclass
class ExecutionSpec:
    """Per-function overrides for input synthesis.

    ``buffers`` maps accessor argument names (their ``name_hint``) to
    buffer shapes, ``scalars`` maps scalar argument names to values.
    """

    global_size: Optional[Tuple[int, ...]] = None
    local_size: Optional[Tuple[int, ...]] = None
    buffers: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    scalars: Dict[str, object] = field(default_factory=dict)


#: Resolved argument plans: ("buffer", shape, element_type, mode, seed),
#: ("local_accessor", shape, element_type),
#: ("storage", shape, element_type, seed) or ("scalar", value).
_ArgPlan = Tuple


@dataclass
class _ResolvedSpec:
    """A fully materializable execution plan for one function."""

    kind: str  # "function" | "kernel"
    arg_plans: List[_ArgPlan] = field(default_factory=list)
    arg_names: List[str] = field(default_factory=list)
    global_size: Optional[Tuple[int, ...]] = None
    local_size: Optional[Tuple[int, ...]] = None


@dataclass
class FunctionExecution:
    """Outcome of executing one function on synthesized inputs."""

    name: str
    kind: str
    results: List[object]
    memory: Dict[str, List[object]]
    counters: Dict[str, int]
    #: The execution tier that actually ran (``"interp"``, ``"jit"``,
    #: ``"vector"``, or a custom registered tier).
    tier: str = "interp"


@dataclass
class DifferentialReport:
    """What :func:`run_differential` checked."""

    pipeline: str
    executed: List[str] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"differential check against pipeline: {self.pipeline}"]
        for name in self.executed:
            lines.append(f"  ok      {name}")
        for name, reason in sorted(self.skipped.items()):
            lines.append(f"  skipped {name}: {reason}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Deterministic synthesis
# ---------------------------------------------------------------------------

def _seed(function: str, argument: str) -> int:
    return zlib.crc32(f"{function}:{argument}".encode("utf-8"))


def _scalar_for(type_, seed: int):
    if isinstance(type_, IntegerType) and type_.width == 1:
        return True
    if isinstance(type_, IndexType):
        return seed % 4
    if isinstance(type_, IntegerType):
        return (seed % 5) + 1
    if isinstance(type_, FloatType):
        return ((seed % 7) + 1) * 0.5
    return None


def _fill_value(element_type, seed: int, index: int):
    if is_float(element_type):
        return (((seed + index * 29) % 23) - 11) * 0.375
    if isinstance(element_type, IntegerType) and element_type.width == 1:
        return (seed + index) % 2
    return ((seed + index * 13) % 17) - 8


def _fill_array(element_type, seed: int, total: int):
    """Vectorized :func:`_fill_value` over ``range(total)``.

    Bit-identical to the scalar formula (all intermediates are
    non-negative, so NumPy's ``%`` agrees with Python's); the scalar
    helper remains the executable specification and the fallback for
    storage without a NumPy dtype.
    """
    index = _np.arange(total, dtype=_np.int64)
    if is_float(element_type):
        return (((seed + index * 29) % 23) - 11) * 0.375
    if isinstance(element_type, IntegerType) and element_type.width == 1:
        return (seed + index) % 2
    return ((seed + index * 13) % 17) - 8


# One element-type -> dtype policy for the whole subsystem: buffers the
# harness fills must match what MemRefStorage would allocate.
_dtype_for = _numpy_dtype


def _default_global(dims: int) -> Tuple[int, ...]:
    return {1: (4,), 2: (4, 4)}.get(dims, (2,) * dims)


def _work_group_size_attr(function: FuncOp) -> Optional[Tuple[int, ...]]:
    attr = function.attributes.get("sycl.work_group_size")
    if attr is None:
        return None
    try:
        return tuple(int(a.value) for a in attr)
    except (TypeError, AttributeError):
        return None


def synthesize_spec(function: FuncOp,
                    spec: Optional[ExecutionSpec] = None) -> _ResolvedSpec:
    """Resolve a materializable input plan for ``function``.

    Raises :class:`InterpreterError` when an argument type cannot be
    synthesized (callers turn that into a "skipped" entry).
    """
    spec = spec or ExecutionSpec()
    resolved = _ResolvedSpec(kind="function")
    item_dims = 0
    for argument in function.arguments:
        item_type = _item_argument_type(argument.type)
        if item_type is not None:
            resolved.kind = "kernel"
            item_dims = item_type.dimensions
    if resolved.kind == "kernel":
        resolved.global_size = tuple(spec.global_size) if spec.global_size \
            else _default_global(item_dims)
        local = spec.local_size or _work_group_size_attr(function)
        resolved.local_size = tuple(local) if local else None
        default_extent = max(resolved.global_size)
    else:
        default_extent = 8

    for position, argument in enumerate(function.arguments):
        name = argument.name_hint or f"arg{position}"
        resolved.arg_names.append(name)
        type_ = argument.type
        if _item_argument_type(type_) is not None:
            if name in spec.buffers or name in spec.scalars:
                raise InterpreterError(
                    f"%{name} is the kernel's {type_} argument; it is "
                    "bound by the launcher and takes no override")
            resolved.arg_plans.append(("item",))
            continue
        inner = type_.element_type if isinstance(type_, MemRefType) else type_
        if isinstance(inner, AccessorType):
            if name in spec.scalars:
                raise InterpreterError(
                    f"scalar value given for %{name}, but its type is "
                    f"{type_}; use a buffer shape for memory arguments")
            shape = spec.buffers.get(
                name, (default_extent,) * inner.dimensions)
            if inner.is_local:
                if resolved.local_size is None:
                    raise InterpreterError(
                        f"%{name} is a local accessor, which requires a "
                        "work-group launch (set local_size or a "
                        "sycl.work_group_size attribute)")
                resolved.arg_plans.append(
                    ("local_accessor", tuple(shape), inner.element_type))
                continue
            resolved.arg_plans.append(
                ("buffer", tuple(shape), inner.element_type,
                 inner.access_mode, _seed(function.sym_name, name)))
            continue
        if _scalar_like(type_) and name in spec.buffers:
            raise InterpreterError(
                f"buffer shape given for %{name}, but its type is "
                f"{type_}; use a scalar value for scalar arguments")
        if name in spec.scalars:
            if not _scalar_like(type_):
                raise InterpreterError(
                    f"scalar value given for %{name}, but its type is "
                    f"{type_}; use a buffer shape for memory arguments")
            resolved.arg_plans.append(("scalar", spec.scalars[name]))
            continue
        scalar = _scalar_for(type_, _seed(function.sym_name, name))
        if scalar is not None:
            resolved.arg_plans.append(("scalar", scalar))
            continue
        if isinstance(type_, MemRefType):
            if isinstance(inner, (ItemType, NDItemType, AccessorType)) \
                    or not _scalar_like(inner):
                raise InterpreterError(
                    f"cannot synthesize a value for %{name} : {type_}")
            shape = tuple(default_extent if dim < 0 else dim
                          for dim in type_.shape)
            override = spec.buffers.get(name)
            if override is not None:
                shape = tuple(override)
            resolved.arg_plans.append(
                ("storage", shape, inner, _seed(function.sym_name, name)))
            continue
        raise InterpreterError(
            f"cannot synthesize a value for %{name} : {type_}")

    # A misspelled override must not silently fall back to synthesized
    # defaults — the caller would compare data they never specified.
    known = set(resolved.arg_names)
    unknown = sorted((set(spec.buffers) | set(spec.scalars)) - known)
    if unknown:
        raise InterpreterError(
            f"spec for '{function.sym_name}' names unknown argument(s) "
            f"{', '.join(unknown)}; arguments are: "
            f"{', '.join(resolved.arg_names) or 'none'}")
    return resolved


def _scalar_like(type_) -> bool:
    return isinstance(type_, (IntegerType, IndexType, FloatType))


def _materialize(plan: _ArgPlan):
    """Build a fresh argument value (+ its snapshot handle) from a plan."""
    kind = plan[0]
    if kind == "scalar":
        return plan[1], None
    if kind == "storage":
        _, shape, element_type, seed = plan
        storage = MemRefStorage(shape, element_type)
        for i in range(storage.size):
            storage.store_flat(i, _fill_value(element_type, seed, i))
        return storage, storage
    if kind == "local_accessor":
        from ..runtime.accessor import LocalAccessor

        _, shape, element_type = plan
        dtype = _dtype_for(element_type)
        # Work-group scratch: fresh per group, nothing to snapshot.
        return LocalAccessor(shape, dtype=dtype), None
    if kind == "buffer":
        _, shape, element_type, mode, seed = plan
        dtype = _dtype_for(element_type)
        # runtime.Buffer is NumPy-backed (a hard dependency of the
        # runtime layer), so the fill is unconditional.
        buffer = Buffer(shape, dtype=dtype)
        total = buffer.size()
        values = _fill_array(element_type, seed, total)
        buffer.write_host(values.astype(dtype).reshape(shape))
        accessor = Accessor(buffer, mode)
        return accessor, buffer
    raise InterpreterError(f"unknown argument plan {plan!r}")


def _snapshot(handle) -> List[object]:
    if isinstance(handle, Buffer):
        array = handle.host_array()
        # tolist() yields native Python floats / ints, matching the
        # per-element float()/int() conversions it replaces.
        return array.reshape(-1).tolist()
    if isinstance(handle, MemRefStorage):
        return handle.snapshot()
    raise InterpreterError(f"cannot snapshot {handle!r}")


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_function(module: ModuleOp, function: FuncOp,
                     resolved: _ResolvedSpec,
                     max_steps: int = 10_000_000) -> FunctionExecution:
    """Deprecated shim: use ``ExecutionEngine(module).execute``."""
    from .engine import ExecutionEngine, _warn_deprecated

    _warn_deprecated("execute_function", "ExecutionEngine.execute")
    engine = ExecutionEngine(module, tier="interp", max_steps=max_steps)
    return engine.execute(function, resolved)


def _executable_functions(module: ModuleOp) -> List[FuncOp]:
    from ..dialects.llvm import LLVMFuncOp

    functions = [op for op in module.walk()
                 if isinstance(op, (FuncOp, LLVMFuncOp))
                 and not op.is_declaration]
    functions.sort(key=lambda f: f.sym_name)
    return functions


def execute_module(module: ModuleOp,
                   specs: Optional[Dict[str, ExecutionSpec]] = None,
                   max_steps: int = 10_000_000,
                   ) -> Tuple[Dict[str, FunctionExecution], Dict[str, str]]:
    """Deprecated shim: use ``ExecutionEngine(module).execute_module``.

    Returns ``(executions, skipped)``; functions whose inputs cannot be
    synthesized or that trap are reported in ``skipped`` with the reason.
    """
    from .engine import ExecutionEngine, _warn_deprecated

    _warn_deprecated("execute_module", "ExecutionEngine.execute_module")
    engine = ExecutionEngine(module, tier="interp", max_steps=max_steps)
    return engine.execute_module(specs)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def _values_equal(a, b, rtol: float, atol: float) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if isinstance(a, float) or isinstance(b, float):
        a, b = float(a), float(b)
        if math.isnan(a) or math.isnan(b):
            # NaN == NaN for equivalence purposes: a pipeline that
            # preserves a NaN result preserved semantics.
            return math.isnan(a) and math.isnan(b)
        return math.isclose(a, b, rel_tol=rtol, abs_tol=atol)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _values_equal(x, y, rtol, atol) for x, y in zip(a, b))
    return a == b


def _compare_sequences(where: str, before: Sequence, after: Sequence,
                       rtol: float, atol: float) -> None:
    if len(before) != len(after):
        raise DifferentialError(
            f"{where}: element count changed ({len(before)} -> "
            f"{len(after)})")
    for index, (a, b) in enumerate(zip(before, after)):
        if not _values_equal(a, b, rtol, atol):
            raise DifferentialError(
                f"{where}[{index}]: {a!r} (pre) != {b!r} (post)")


def compare_executions(before: FunctionExecution, after: FunctionExecution,
                       rtol: float = 1e-4, atol: float = 1e-6) -> None:
    """Raise :class:`DifferentialError` unless the two executions match."""
    name = before.name
    _compare_sequences(f"{name}: results", before.results, after.results,
                       rtol, atol)
    if set(before.memory) != set(after.memory):
        raise DifferentialError(
            f"{name}: compared memory changed "
            f"({sorted(before.memory)} -> {sorted(after.memory)})")
    for key in before.memory:
        _compare_sequences(f"{name}: memory '{key}'", before.memory[key],
                           after.memory[key], rtol, atol)


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------

def _resolve_pipeline(pipeline):
    """Accept a PassManager, a named pipeline or a pipeline spec string."""
    from ..transforms.pipelines import (
        NAMED_PIPELINES,
        build_named_pipeline,
        dump_pass_pipeline,
        parse_pass_pipeline,
    )

    if isinstance(pipeline, str):
        if pipeline in NAMED_PIPELINES:
            return build_named_pipeline(pipeline), pipeline
        manager = parse_pass_pipeline(pipeline)
        return manager, dump_pass_pipeline(manager)
    return pipeline, dump_pass_pipeline(pipeline)


def run_differential(module: ModuleOp,
                     pipeline,
                     specs: Optional[Dict[str, ExecutionSpec]] = None,
                     rtol: float = 1e-4,
                     atol: float = 1e-6,
                     max_steps: int = 10_000_000,
                     require_executions: bool = True,
                     manager=None,
                     tier: str = "interp") -> DifferentialReport:
    """Execute ``module`` before and after ``pipeline``; compare.

    ``module`` itself is left untouched: the pipeline runs on a clone.
    ``pipeline`` may be a :class:`~repro.transforms.pass_manager.PassManager`,
    a named pipeline (``"sycl-mlir"``) or a pipeline spec string.  Pass
    ``manager`` to run the (already resolved) pipeline through a specific
    pass manager — e.g. one with ``jobs=4`` or a warm
    :class:`~repro.transforms.compile_cache.CompileCache` — while
    ``pipeline`` still provides the display name.

    ``tier`` selects the execution tier both sides run on (each side
    gets its own :class:`~repro.interp.engine.ExecutionEngine` with a
    fresh executable cache), so ``tier="jit"`` / ``tier="vector"`` turn
    the harness into a cross-tier equivalence oracle.

    Returns a :class:`DifferentialReport`; raises
    :class:`DifferentialError` on the first mismatch.
    """
    from .engine import ExecutionEngine

    if manager is not None:
        # The override IS the pipeline to run; `pipeline` only labels it.
        from ..transforms.pipelines import dump_pass_pipeline

        resolved_manager = manager
        label = pipeline if isinstance(pipeline, str) \
            else dump_pass_pipeline(pipeline)
    else:
        resolved_manager, label = _resolve_pipeline(pipeline)

    # Resolve inputs once, from the pre-pipeline module, so both sides
    # execute the exact same launch configuration and data.
    specs = specs or {}
    plans: Dict[str, _ResolvedSpec] = {}
    report = DifferentialReport(pipeline=label)
    pre: Dict[str, FunctionExecution] = {}
    pre_engine = ExecutionEngine(module, tier=tier, max_steps=max_steps)
    for function in _executable_functions(module):
        name = function.sym_name
        try:
            plans[name] = synthesize_spec(function, specs.get(name))
            pre[name] = pre_engine.execute(function, plans[name])
        except (InterpreterError, TrapError, ValueError) as error:
            report.skipped[name] = str(error)

    if require_executions and not pre:
        raise DifferentialError(
            "differential harness could not execute any function of the "
            f"module: {report.skipped}")

    optimized = module.clone({})
    resolved_manager.run(optimized)

    post_engine = ExecutionEngine(optimized, tier=tier,
                                  max_steps=max_steps)
    post_functions = {f.sym_name: f
                      for f in _executable_functions(optimized)}
    for name, before in sorted(pre.items()):
        function = post_functions.get(name)
        if function is None:
            raise DifferentialError(
                f"function '{name}' disappeared after pipeline {label}")
        try:
            after = post_engine.execute(function, plans[name])
        except (InterpreterError, TrapError, ValueError) as error:
            raise DifferentialError(
                f"function '{name}' became non-executable after pipeline "
                f"{label}: {error}") from error
        compare_executions(before, after, rtol=rtol, atol=atol)
        report.executed.append(name)
    return report
