"""The per-dialect evaluator registry of the IR interpreter.

Dialects own their execution semantics the same way they own their pass
logic: each dialect module registers an *evaluator* per operation name
with the :func:`register_evaluator` decorator (mirroring
``@register_pass`` in :mod:`repro.transforms.pass_manager`)::

    @register_evaluator("arith.addi")
    def _eval_addi(ctx, op, args):
        return [args[0] + args[1]]

An evaluator receives the active :class:`repro.interp.interpreter.EvalContext`
(``ctx``), the operation and the already-evaluated operand values, and
returns a sequence with one Python value per op result (or ``None`` /
``()`` for ops without results).

Two special shapes participate in control flow:

* evaluators of region-carrying ops (``scf.for``, ``scf.if``,
  ``func.call``...) are *generator functions* that delegate to
  ``yield from ctx.exec_block(...)`` so that work-group barriers deep
  inside nested regions can suspend the whole work-item;
* terminator evaluators return a
  :class:`repro.interp.memory.BlockResult` instead of result values,
  which stops the enclosing block.

Operations may alternatively implement
:class:`repro.ir.InterpretableOpInterface`; the registry is consulted
first, the interface is the fallback.  This module deliberately imports
nothing from ``repro.dialects`` so dialect modules can import it at
definition time without cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

#: ``(ctx, op, args) -> results`` — see the module docstring.
Evaluator = Callable

_EVALUATOR_REGISTRY: Dict[str, Evaluator] = {}


class EvaluatorRegistrationError(Exception):
    """Raised when two evaluators claim the same operation name."""


def register_evaluator(op_name: str,
                       evaluator: Optional[Evaluator] = None):
    """Register ``evaluator`` for operation ``op_name``.

    Usable as a decorator (``@register_evaluator("arith.addi")``) or as a
    plain call (``register_evaluator("arith.addi", fn)``) when one
    function serves several operation names.
    """

    def attach(fn: Evaluator) -> Evaluator:
        existing = _EVALUATOR_REGISTRY.get(op_name)
        if existing is not None and existing is not fn:
            raise EvaluatorRegistrationError(
                f"evaluator for {op_name!r} registered twice")
        _EVALUATOR_REGISTRY[op_name] = fn
        return fn

    if evaluator is not None:
        return attach(evaluator)
    return attach


def lookup_evaluator(op_name: str) -> Optional[Evaluator]:
    """The evaluator registered for ``op_name``, or None."""
    return _EVALUATOR_REGISTRY.get(op_name)


def registered_evaluators() -> Dict[str, Evaluator]:
    """Snapshot of the registry (op name -> evaluator)."""
    return dict(_EVALUATOR_REGISTRY)
