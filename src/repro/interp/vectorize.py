"""Vectorized ND-range execution tier (the ``"vector"`` backend).

Where the JIT tier (:mod:`repro.interp.jit`) still loops over work
items in Python, this tier executes a whole work-group — or, for basic
launches, the whole ND-range — in *lockstep*: every work-item-varying
value becomes one NumPy array of length ``L`` (the lane count), every
uniform value stays a Python scalar, and each operation of the kernel
body executes exactly once as an array operation.

**Legality.**  Lockstep execution is exact only when the lanes cannot
diverge: :func:`vector_legality` declines kernels containing any
``scf.if`` — reporting *divergent* branches (those whose condition
:mod:`repro.analysis.uniformity` cannot prove uniform) distinctly from
merely-unvectorized uniform control flow — any unsupported operation,
and kernels with no work-item argument.  The backend turns the reason
into a :class:`~repro.interp.engine.TierFallback`, so such kernels
automatically run on the next tier.

For the kernels that remain, lockstep preserves the interpreter's
observable semantics on race-free programs: a divergence-free kernel
executes the same op sequence in every lane; barriers degenerate to
phase separators lockstep satisfies by construction (no-ops that only
advance the barrier counter); and SYCL leaves cross-item data races
undefined, so the array-at-a-time store order is as valid as the
interpreter's item-at-a-time order.  Gathers from f32 storage widen to
binary64 (``.astype(float64)``) so arithmetic matches the interpreter
bit for bit; stores round through the element dtype exactly like
``MemRefStorage`` does.

**Counters and traps.**  Every op adds ``L`` to ``counters.ops`` (and
loads/stores/bytes scale the same way), so the reported
:class:`ExecutionCounters` match the interpreter's.  Bounds, division
and step traps raise the same :class:`TrapError`\\ s, checked per lane.
Mid-run aborts that are *not* semantic traps (e.g. a loop bound that
turns out to vary per work item) raise
:class:`~repro.interp.jit.JITExecutionError`, which only the engine's
re-materializing ``execute`` path degrades to the next tier.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Tuple

from ..ir import IndexType, IntegerType, is_float
from .engine import Backend, TierFallback, register_executor
from .jit import (
    JITExecutionError,
    _jit_divf,
    _jit_fptosi,
    _jit_maxf,
    _jit_minf,
    _jit_remf,
    _merge_counters,
)
from .memory import (
    AccessorBinding,
    InterpreterError,
    MemRefStorage,
    TrapError,
    byte_size_of,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships NumPy
    _np = None


# ---------------------------------------------------------------------------
# Legality
# ---------------------------------------------------------------------------

_SUPPORTED_OPS = frozenset({
    "arith.constant", "arith.addi", "arith.subi", "arith.muli",
    "arith.andi", "arith.ori", "arith.xori", "arith.minsi", "arith.maxsi",
    "arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf", "arith.remf",
    "arith.minf", "arith.maxf", "arith.shli", "arith.shrsi",
    "arith.cmpi", "arith.cmpf", "arith.select", "arith.index_cast",
    "arith.extsi", "arith.trunci", "arith.sitofp", "arith.fptosi",
    "arith.extf", "arith.truncf", "arith.negf",
    "scf.for", "scf.yield",
    "affine.for", "affine.yield", "affine.apply", "affine.min",
    "affine.load", "affine.store",
    "memref.alloc", "memref.alloca", "memref.dealloc", "memref.cast",
    "memref.dim", "memref.load", "memref.store",
    "func.return",
    "sycl.constructor", "sycl.id.get", "sycl.range.get", "sycl.range.size",
    "sycl.item.get_id", "sycl.item.get_linear_id", "sycl.item.get_range",
    "sycl.nd_item.get_global_id", "sycl.nd_item.get_global_linear_id",
    "sycl.nd_item.get_local_id", "sycl.nd_item.get_local_linear_id",
    "sycl.nd_item.get_group_id", "sycl.nd_item.get_global_range",
    "sycl.nd_item.get_local_range", "sycl.nd_item.get_group_range",
    "sycl.nd_item.get_group", "sycl.global_id", "sycl.local_id",
    "sycl.group.get_group_id", "sycl.group.get_local_range",
    "sycl.group.get_group_range",
    "sycl.accessor.subscript", "sycl.accessor.get_pointer",
    "sycl.accessor.get_range", "sycl.accessor.get_mem_range",
    "sycl.accessor.get_offset", "sycl.accessor.size",
    "sycl.group_barrier",
})

#: ``id(function) -> (function, reason)`` — the held reference keeps the
#: id stable; cleared when it grows past any sane working set.
_LEGALITY_MEMO: Dict[int, Tuple[object, Optional[str]]] = {}


def vector_legality(function) -> Optional[str]:
    """``None`` when ``function`` is lockstep-vectorizable, else the
    human-readable reason it is not (memoized per function object)."""
    memo = _LEGALITY_MEMO.get(id(function))
    if memo is not None and memo[0] is function:
        return memo[1]
    reason = _compute_legality(function)
    if len(_LEGALITY_MEMO) > 512:
        _LEGALITY_MEMO.clear()
    _LEGALITY_MEMO[id(function)] = (function, reason)
    return reason


def _compute_legality(function) -> Optional[str]:
    from .interpreter import _item_argument_type
    from .memory import _numpy_dtype

    if function.is_declaration:
        return "function is a declaration"
    rank = None
    for argument in function.arguments:
        item_type = _item_argument_type(argument.type)
        if item_type is not None:
            item_rank = getattr(item_type, "dimensions", 1)
            if rank is not None and rank != item_rank:
                return "conflicting work-item argument ranks"
            rank = item_rank
    if rank is None:
        return "kernel has no work-item argument"
    branches = [op for op in function.walk(include_self=False)
                if op.name == "scf.if"]
    if branches:
        from ..analysis.uniformity import UniformityAnalysis

        analysis = UniformityAnalysis(function)
        divergent = analysis.divergent_branches()
        if divergent:
            return (f"{len(divergent)} divergent branch(es): lanes would "
                    f"diverge on a non-uniform 'scf.if' condition")
        return "uniform control flow ('scf.if') is not vectorized"
    for op in function.walk(include_self=False):
        name = op.name
        if name not in _SUPPORTED_OPS:
            return f"operation '{name}' is not vectorized"
        if name == "func.return" and op.operands:
            return "kernel returning values"
        if name in ("memref.alloc", "memref.alloca"):
            memref_type = op.results[0].type
            if _numpy_dtype(memref_type.element_type) is None:
                if memref_type.num_elements() not in (1, None) \
                        and memref_type.rank != 0:
                    return "multi-element aggregate alloc is not vectorized"
            elif not memref_type.has_static_shape():
                return "dynamic-shape alloc is not vectorized"
    return None


# ---------------------------------------------------------------------------
# Lockstep value representations
# ---------------------------------------------------------------------------

#: Sentinel bound to work-item arguments (queries read the lane arrays).
_ITEM = object()


class _Store:
    """One storage: a flat array, shared or one row per lane."""

    __slots__ = ("flat", "size", "shape", "is_float", "elem_bytes",
                 "per_lane")

    def __init__(self, flat, size, shape, is_float_, elem_bytes, per_lane):
        self.flat = flat
        self.size = size
        self.shape = shape
        self.is_float = is_float_
        self.elem_bytes = elem_bytes
        self.per_lane = per_lane


class _VAcc:
    """A bound accessor argument plus its hoisted layout facts."""

    __slots__ = ("store", "dims", "mem_range", "offset", "access_range",
                 "base", "total")

    def __init__(self, store, dims, mem_range, offset, access_range, base):
        self.store = store
        self.dims = dims
        self.mem_range = mem_range
        self.offset = offset
        self.access_range = access_range
        self.base = base
        total = 1
        for extent in access_range:
            total *= int(extent)
        self.total = total


class _VView:
    """A resolved element position into a store (accessor subscript or
    ``get_pointer`` result)."""

    __slots__ = ("store", "position", "checked")

    def __init__(self, store, position, checked):
        self.store = store
        self.position = position
        self.checked = checked


class _VCell:
    """A one-slot aggregate cell (``!sycl_id_N`` alloca): holds the
    component values the dominating ``sycl.constructor`` wrote."""

    __slots__ = ("comps",)

    def __init__(self):
        self.comps: Optional[List[object]] = None


_BIN_INT = {
    "arith.addi": operator.add, "arith.subi": operator.sub,
    "arith.muli": operator.mul, "arith.andi": operator.and_,
    "arith.ori": operator.or_, "arith.xori": operator.xor,
}
_BIN_FLOAT = {
    "arith.addf": operator.add, "arith.subf": operator.sub,
    "arith.mulf": operator.mul,
}
_CMP_INT = {
    "eq": operator.eq, "ne": operator.ne,
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
    "ult": operator.lt, "ule": operator.le,
    "ugt": operator.gt, "uge": operator.ge,
}


def _is_array(value) -> bool:
    return isinstance(value, _np.ndarray)


def _v_truncdiv(a, b):
    # C-style truncating division, elementwise (mirrors arith._floordiv).
    quotient = a // b
    remainder = a - quotient * b
    return quotient + ((remainder != 0) & ((a < 0) != (b < 0)))


def _check_nonzero(b, op_name) -> None:
    if _is_array(b):
        if (b == 0).any():
            raise TrapError(f"division by zero in '{op_name}'")
    elif b == 0:
        raise TrapError(f"division by zero in '{op_name}'")


def _v_cmpf(predicate, a, b):
    if not _is_array(a) and not _is_array(b):
        from ..dialects.arith import _FLOAT_PREDICATES

        compare = _FLOAT_PREDICATES.get(predicate)
        if compare is None:
            raise JITExecutionError(f"cmpf predicate {predicate!r}")
        return bool(compare(a, b))
    unordered = _np.isnan(a) | _np.isnan(b)
    if predicate == "oeq":
        return (a == b) & ~unordered
    if predicate == "one":
        return (a != b) & ~unordered
    if predicate == "olt":
        return a < b
    if predicate == "ole":
        return a <= b
    if predicate == "ogt":
        return a > b
    if predicate == "oge":
        return a >= b
    if predicate == "ord":
        return ~unordered
    if predicate == "ueq":
        return (a == b) | unordered
    if predicate == "une":
        return (a != b) | unordered
    if predicate == "ult":
        return (a < b) | unordered
    if predicate == "ule":
        return (a <= b) | unordered
    if predicate == "ugt":
        return (a > b) | unordered
    if predicate == "uge":
        return (a >= b) | unordered
    if predicate == "uno":
        return unordered
    raise JITExecutionError(f"cmpf predicate {predicate!r}")


def _scalar_int_type(type_) -> bool:
    return isinstance(type_, (IntegerType, IndexType))


# ---------------------------------------------------------------------------
# The lockstep evaluator
# ---------------------------------------------------------------------------

class _Lockstep:
    """Evaluates one kernel body once per work-group, array-at-a-time."""

    def __init__(self, function, counters, max_steps: int):
        self.fn = function
        self.counters = counters
        self.max_steps = max_steps
        self.steps = 0
        self.lanes = 0
        self.mode = "basic"
        self.item_rank: Optional[int] = None
        self.g: List[object] = []
        self.l: List[object] = []
        self.p: List[int] = []
        self.GR: Tuple[int, ...] = ()
        self.LR: Tuple[int, ...] = ()
        self.PR: Tuple[int, ...] = ()
        self.local_args: List[Tuple[int, Tuple[int, ...], object, bool,
                                    int]] = []
        self._lane_ix = None

    # -- launch driver -------------------------------------------------------
    def launch(self, plan, global_range, local_range, group_range) -> None:
        base = self._bind(plan, local_range is not None)
        rank = self.item_rank
        GR = tuple(int(d) for d in global_range)
        if rank is None or len(GR) != rank:
            raise TierFallback("launch rank mismatch")
        self.GR = GR
        total = 1
        for extent in GR:
            total *= extent
        self.counters.work_items += total
        if total == 0:
            return
        if local_range is None:
            self.mode = "basic"
            self.lanes = total
            self._lane_ix = _np.arange(total)
            self.g = [component.astype(_np.int64) for component in
                      _np.unravel_index(self._lane_ix, GR)]
            self._run_block(self.fn.body, dict(base))
            return
        self.mode = "nd"
        LR = tuple(int(d) for d in local_range)
        PR = tuple(int(d) for d in group_range)
        if len(LR) != rank or len(PR) != rank:
            raise TierFallback("launch rank mismatch")
        self.LR, self.PR = LR, PR
        lanes = 1
        for extent in LR:
            lanes *= extent
        if lanes == 0:
            return
        self.lanes = lanes
        self._lane_ix = _np.arange(lanes)
        self.l = [component.astype(_np.int64) for component in
                  _np.unravel_index(self._lane_ix, LR)]
        for group in _np.ndindex(*PR):
            self.p = [int(index) for index in group]
            self.g = [self.l[d] + self.p[d] * LR[d] for d in range(rank)]
            env = dict(base)
            for vid, shape, dtype, floaty, elem_bytes in self.local_args:
                size = 1
                for extent in shape:
                    size *= extent
                env[vid] = _Store(_np.zeros(size, dtype=dtype), size,
                                  shape, floaty, elem_bytes, False)
            self._run_block(self.fn.body, env)

    # -- argument binding (pre-execution: failures are TierFallback) ---------
    def _bind(self, plan, is_nd: bool) -> Dict[int, object]:
        from ..dialects.sycl import AccessorType, accessor_type_of
        from .interpreter import _element_type_for_dtype, _item_argument_type
        from .memory import _numpy_dtype

        base: Dict[int, object] = {}
        for argument, entry in zip(self.fn.arguments, plan):
            if entry[0] == "item":
                item_type = _item_argument_type(argument.type)
                self.item_rank = getattr(item_type, "dimensions", 1)
                base[id(argument)] = _ITEM
                continue
            if entry[0] == "local":
                if not is_nd:
                    # Matches Interpreter._launch_basic's trap.
                    raise TrapError(
                        "a LocalAccessor argument requires a work-group "
                        "launch (pass local_size)")
                local = entry[1]
                element = _element_type_for_dtype(local.dtype)
                dtype = _numpy_dtype(element)
                if dtype is None:
                    raise TierFallback(
                        "local accessor dtype is not vectorizable")
                shape = tuple(int(d) for d in local.shape)
                self.local_args.append(
                    (id(argument), shape, dtype, is_float(element),
                     byte_size_of(element)))
                continue
            value = entry[1]
            accessor_type = accessor_type_of(argument)
            if isinstance(accessor_type, AccessorType) \
                    and isinstance(value, AccessorBinding):
                base[id(argument)] = self._bind_accessor(
                    value, accessor_type)
                continue
            if isinstance(value, MemRefStorage):
                base[id(argument)] = self._bind_memref(value, argument)
                continue
            if isinstance(value, (bool, int, float)):
                base[id(argument)] = value
                continue
            raise TierFallback(
                f"argument of type {type(value).__name__} is not "
                f"vectorizable")
        return base

    def _bind_accessor(self, binding, accessor_type) -> _VAcc:
        element = accessor_type.element_type
        floaty = is_float(element)
        flat = binding.storage._flat
        if flat is None or (flat.dtype.kind == "f") is not floaty:
            raise TierFallback("accessor storage is not vectorizable")
        dims = accessor_type.dimensions
        if binding.dimensions != dims:
            raise TierFallback("accessor rank mismatch")
        store = _Store(flat, binding.storage._size, None, floaty,
                       byte_size_of(element), False)
        return _VAcc(store, dims, tuple(binding.mem_range),
                     tuple(binding.offset), tuple(binding.access_range),
                     binding.base_linear_offset())

    def _bind_memref(self, storage, argument) -> _Store:
        from .memory import _numpy_dtype

        element = argument.type.element_type
        if _numpy_dtype(element) is None:
            raise TierFallback(
                "memref argument of aggregate element type is not "
                "vectorizable")
        floaty = is_float(element)
        flat = storage._flat
        if flat is None or (flat.dtype.kind == "f") is not floaty:
            raise TierFallback("memref storage is not vectorizable")
        shape = tuple(int(d) for d in storage.shape)
        if len(shape) != argument.type.rank:
            raise TierFallback("memref rank mismatch")
        return _Store(flat, storage._size, shape, floaty,
                      byte_size_of(element), False)

    # -- evaluation core -----------------------------------------------------
    def _val(self, env, value):
        try:
            return env[id(value)]
        except KeyError:
            raise JITExecutionError(
                f"use of an unbound value in '{self.fn.sym_name}'") \
                from None

    def _run_block(self, block, env):
        """Run every op of ``block``; returns the final terminator's
        yielded values (a list) or ``None``."""
        lanes = self.lanes
        counters = self.counters
        result = None
        op = block.first_op
        while op is not None:
            self.steps += lanes
            if self.steps > self.max_steps:
                raise TrapError(
                    f"exceeded the interpreter step budget "
                    f"({self.max_steps} ops) at '{op.name}'")
            counters.ops += lanes
            result = self._eval_op(op, env)
            op = op.next_op()
        return result

    def _uniform_int(self, value, what: str) -> int:
        if _is_array(value):
            raise JITExecutionError(
                f"{what} varies per work-item in '{self.fn.sym_name}'")
        return int(value)

    def _dim_of(self, env, op) -> int:
        if len(op.operands) <= 1:
            return 0
        return self._uniform_int(self._val(env, op.operands[1]),
                                 "a dimension operand")

    def _components(self, env, value) -> List[object]:
        rep = self._val(env, value)
        if isinstance(rep, _VCell):
            if rep.comps is None:
                raise TrapError("read of an unconstructed SYCL id")
            return rep.comps
        if _is_array(rep) or isinstance(rep, (bool, int, float)):
            return [rep]
        raise JITExecutionError(
            f"id read of a {type(rep).__name__} value")

    # -- op dispatch ---------------------------------------------------------
    def _eval_op(self, op, env):
        name = op.name
        if name == "arith.constant":
            env[id(op.results[0])] = op.value
            return None
        if name in _BIN_INT:
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            result = _BIN_INT[name](a, b)
            if getattr(op.results[0].type, "width", 64) == 1:
                result = result.astype(bool) if _is_array(result) \
                    else bool(result)
            env[id(op.results[0])] = result
            return None
        if name in _BIN_FLOAT:
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            env[id(op.results[0])] = _BIN_FLOAT[name](a, b)
            return None
        if name in ("arith.minsi", "arith.maxsi"):
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            if _is_array(a) or _is_array(b):
                fn = _np.minimum if name == "arith.minsi" else _np.maximum
            else:
                fn = min if name == "arith.minsi" else max
            env[id(op.results[0])] = fn(a, b)
            return None
        if name in ("arith.divsi", "arith.divui", "arith.remsi",
                    "arith.remui"):
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            _check_nonzero(b, name)
            if not _is_array(a) and not _is_array(b):
                quotient = _v_truncdiv(int(a), int(b))
                if name == "arith.divsi":
                    result = quotient
                elif name == "arith.divui":
                    result = a // b
                elif name == "arith.remsi":
                    result = a - quotient * b
                else:
                    result = a % b
            elif name == "arith.divsi":
                result = _v_truncdiv(a, b)
            elif name == "arith.divui":
                result = a // b
            elif name == "arith.remsi":
                result = a - _v_truncdiv(a, b) * b
            else:
                result = a % b
            env[id(op.results[0])] = result
            return None
        if name in ("arith.divf", "arith.remf", "arith.minf", "arith.maxf"):
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            if not _is_array(a) and not _is_array(b):
                scalar = {"arith.divf": _jit_divf, "arith.remf": _jit_remf,
                          "arith.minf": _jit_minf,
                          "arith.maxf": _jit_maxf}[name]
                env[id(op.results[0])] = scalar(a, b)
                return None
            with _np.errstate(divide="ignore", invalid="ignore"):
                if name == "arith.divf":
                    result = a / b
                elif name == "arith.remf":
                    result = _np.fmod(a, b)
                elif name == "arith.minf":
                    result = _np.minimum(a, b)
                else:
                    result = _np.maximum(a, b)
            env[id(op.results[0])] = result
            return None
        if name in ("arith.shli", "arith.shrsi"):
            width = getattr(op.results[0].type, "width", 64)
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            if _is_array(b):
                bad = (b < 0) | (b >= width)
                if bad.any():
                    raise TrapError(
                        f"shift amount {int(b[bad][0])} out of range for "
                        f"i{width} in '{name}'")
            elif not 0 <= int(b) < width:
                raise TrapError(
                    f"shift amount {int(b)} out of range for i{width} in "
                    f"'{name}'")
            env[id(op.results[0])] = (a << b) if name == "arith.shli" \
                else (a >> b)
            return None
        if name == "arith.cmpi":
            compare = _CMP_INT.get(op.predicate)
            if compare is None:
                raise JITExecutionError(
                    f"cmpi predicate {op.predicate!r}")
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            env[id(op.results[0])] = compare(a, b)
            return None
        if name == "arith.cmpf":
            a = self._val(env, op.operands[0])
            b = self._val(env, op.operands[1])
            env[id(op.results[0])] = _v_cmpf(op.predicate, a, b)
            return None
        if name == "arith.select":
            condition = self._val(env, op.operands[0])
            on_true = self._val(env, op.operands[1])
            on_false = self._val(env, op.operands[2])
            if _is_array(condition) or _is_array(on_true) \
                    or _is_array(on_false):
                env[id(op.results[0])] = _np.where(condition, on_true,
                                                   on_false)
            else:
                env[id(op.results[0])] = on_true if condition else on_false
            return None
        if name in ("arith.index_cast", "arith.extsi"):
            value = self._val(env, op.operands[0])
            if _scalar_int_type(op.operands[0].type) \
                    and getattr(op.operands[0].type, "width", 64) != 1:
                env[id(op.results[0])] = value
            elif _is_array(value):
                env[id(op.results[0])] = value.astype(_np.int64)
            else:
                env[id(op.results[0])] = int(value)
            return None
        if name == "arith.trunci":
            width = op.results[0].type.width
            mask = (1 << width) - 1
            value = self._val(env, op.operands[0])
            if _is_array(value):
                result = value.astype(_np.int64) & mask
                if width == 1:
                    result = result.astype(bool)
            else:
                result = int(value) & mask
                if width == 1:
                    result = bool(result)
            env[id(op.results[0])] = result
            return None
        if name == "arith.sitofp":
            value = self._val(env, op.operands[0])
            env[id(op.results[0])] = value.astype(_np.float64) \
                if _is_array(value) else float(value)
            return None
        if name == "arith.fptosi":
            value = self._val(env, op.operands[0])
            if _is_array(value):
                if not _np.isfinite(value).all():
                    raise TrapError(
                        "'arith.fptosi' cannot convert a non-finite value")
                env[id(op.results[0])] = value.astype(_np.int64)
            else:
                env[id(op.results[0])] = _jit_fptosi(value)
            return None
        if name in ("arith.extf", "arith.truncf"):
            env[id(op.results[0])] = self._val(env, op.operands[0])
            return None
        if name == "arith.negf":
            value = self._val(env, op.operands[0])
            env[id(op.results[0])] = -value if _is_array(value) \
                else -float(value)
            return None
        if name in ("scf.yield", "affine.yield"):
            return [self._val(env, operand) for operand in op.operands]
        if name == "func.return":
            return None
        if name in ("scf.for", "affine.for"):
            self._eval_for(op, env, affine=(name == "affine.for"))
            return None
        if name == "affine.apply":
            coefficients = op.coefficients
            if len(coefficients) != len(op.operands):
                raise TrapError(
                    "affine.apply coefficient / operand count mismatch")
            result = op.get_int_attr("constant", 0)
            for coefficient, operand in zip(coefficients, op.operands):
                result = result + coefficient * self._val(env, operand)
            env[id(op.results[0])] = result
            return None
        if name == "affine.min":
            if not op.operands:
                raise JITExecutionError("affine.min with no operands")
            values = [self._val(env, operand) for operand in op.operands]
            result = values[0]
            for value in values[1:]:
                if _is_array(result) or _is_array(value):
                    result = _np.minimum(result, value)
                else:
                    result = min(result, value)
            env[id(op.results[0])] = result
            return None
        if name in ("memref.alloc", "memref.alloca"):
            self._eval_alloc(op, env)
            return None
        if name == "memref.dealloc":
            return None
        if name == "memref.cast":
            env[id(op.results[0])] = self._val(env, op.operands[0])
            return None
        if name == "memref.dim":
            self._eval_dim(op, env)
            return None
        if name in ("memref.load", "affine.load"):
            store, position = self._position(env, op.operands[0],
                                             list(op.operands[1:]))
            self.counters.loads += self.lanes
            self.counters.bytes_read += self.lanes * store.elem_bytes
            env[id(op.results[0])] = self._gather(store, position)
            return None
        if name in ("memref.store", "affine.store"):
            store, position = self._position(env, op.operands[1],
                                             list(op.operands[2:]))
            self.counters.stores += self.lanes
            self.counters.bytes_written += self.lanes * store.elem_bytes
            self._scatter(store, position, self._val(env, op.operands[0]))
            return None
        if name == "sycl.constructor":
            self._eval_constructor(op, env)
            return None
        if name in ("sycl.id.get", "sycl.range.get"):
            what = "the id" if name == "sycl.id.get" else "the range"
            comps = self._components(env, op.operands[0])
            dim = self._dim_of(env, op)
            if not 0 <= dim < len(comps):
                raise TrapError(
                    f"dimension {dim} out of range for {what} of rank "
                    f"{len(comps)}")
            env[id(op.results[0])] = comps[dim]
            return None
        if name == "sycl.range.size":
            comps = self._components(env, op.operands[0])
            result = comps[0]
            for comp in comps[1:]:
                result = result * comp
            env[id(op.results[0])] = result
            return None
        if name in ("sycl.item.get_id", "sycl.nd_item.get_global_id",
                    "sycl.global_id"):
            self._position_query(env, op, self.g, "the global id",
                                 require_local=False)
            return None
        if name in ("sycl.item.get_linear_id",
                    "sycl.nd_item.get_global_linear_id"):
            self._linear_query(env, op, self.g, self.GR,
                               require_local=False)
            return None
        if name in ("sycl.nd_item.get_local_id", "sycl.local_id"):
            self._position_query(env, op, self.l, "the local id",
                                 require_local=True)
            return None
        if name == "sycl.nd_item.get_local_linear_id":
            self._linear_query(env, op, self.l, self.LR,
                               require_local=True)
            return None
        if name in ("sycl.nd_item.get_group_id", "sycl.group.get_group_id"):
            self._position_query(env, op, self.p, "the group id",
                                 require_local=True)
            return None
        if name in ("sycl.item.get_range", "sycl.nd_item.get_global_range"):
            self._range_query(env, op, self.GR, "the global range",
                              require_local=False)
            return None
        if name in ("sycl.nd_item.get_local_range",
                    "sycl.group.get_local_range"):
            self._range_query(env, op, self.LR, "the local range",
                              require_local=True)
            return None
        if name in ("sycl.nd_item.get_group_range",
                    "sycl.group.get_group_range"):
            self._range_query(env, op, self.PR, "the group range",
                              require_local=True)
            return None
        if name == "sycl.nd_item.get_group":
            self._item_check(env, op)
            if self.mode == "basic":
                raise TrapError("work-group query on a kernel launched "
                                "without a local range")
            env[id(op.results[0])] = _ITEM
            return None
        if name == "sycl.accessor.subscript":
            self._eval_subscript(op, env)
            return None
        if name == "sycl.accessor.get_pointer":
            acc = self._acc_of(env, op.operands[0])
            env[id(op.results[0])] = _VView(acc.store, acc.base, False)
            return None
        if name in ("sycl.accessor.get_range", "sycl.accessor.get_mem_range",
                    "sycl.accessor.get_offset"):
            acc = self._acc_of(env, op.operands[0])
            source, what = {
                "sycl.accessor.get_range":
                    (acc.access_range, "the accessor range"),
                "sycl.accessor.get_mem_range":
                    (acc.mem_range, "the accessor mem range"),
                "sycl.accessor.get_offset":
                    (acc.offset, "the accessor offset"),
            }[name]
            dim = self._dim_of(env, op)
            if not 0 <= dim < acc.dims:
                raise TrapError(
                    f"dimension {dim} out of range for {what} of rank "
                    f"{acc.dims}")
            env[id(op.results[0])] = int(source[dim])
            return None
        if name == "sycl.accessor.size":
            acc = self._acc_of(env, op.operands[0])
            env[id(op.results[0])] = acc.total
            return None
        if name == "sycl.group_barrier":
            if self.mode == "basic":
                raise TrapError(
                    "sycl.group_barrier outside work-group execution "
                    "(launch the kernel with a local range)")
            # Lockstep already synchronizes the lanes: the barrier is a
            # no-op that only advances the counter.
            self.counters.barriers += self.lanes
            return None
        raise JITExecutionError(
            f"operation '{name}' reached the vector tier unsupported")

    # -- structured control flow ---------------------------------------------
    def _eval_for(self, op, env, affine: bool) -> None:
        lower = self._uniform_int(self._val(env, op.operands[0]),
                                  "a loop bound")
        upper = self._uniform_int(self._val(env, op.operands[1]),
                                  "a loop bound")
        if affine:
            step = op.step
            carried_init = list(op.operands[2:])
            if step <= 0:
                raise TrapError(
                    f"affine.for with non-positive step {step}")
        else:
            step = self._uniform_int(self._val(env, op.operands[2]),
                                     "a loop step")
            carried_init = list(op.operands[3:])
            if step <= 0:
                raise TrapError(
                    f"scf.for with non-positive step {step}")
        carried = [self._val(env, value) for value in carried_init]
        body = op.body
        arguments = body.arguments
        for induction in range(lower, upper, step):
            env[id(arguments[0])] = induction
            for argument, value in zip(arguments[1:], carried):
                env[id(argument)] = value
            yielded = self._run_block(body, env)
            if yielded is not None:
                carried = yielded
        for result, value in zip(op.results, carried):
            env[id(result)] = value

    # -- memory --------------------------------------------------------------
    def _eval_alloc(self, op, env) -> None:
        from .memory import _numpy_dtype

        memref_type = op.results[0].type
        dtype = _numpy_dtype(memref_type.element_type)
        if dtype is None:
            env[id(op.results[0])] = _VCell()
            return
        size = memref_type.num_elements()
        floaty = is_float(memref_type.element_type)
        elem_bytes = byte_size_of(memref_type.element_type)
        shape = tuple(memref_type.shape)
        if memref_type.memory_space == "local" and self.mode == "nd":
            # The body runs once per group, so a plain allocation here is
            # naturally one shared tile per work-group.
            env[id(op.results[0])] = _Store(
                _np.zeros(size, dtype=dtype), size, shape, floaty,
                elem_bytes, False)
            return
        env[id(op.results[0])] = _Store(
            _np.zeros((self.lanes, size), dtype=dtype), size, shape,
            floaty, elem_bytes, True)

    def _eval_dim(self, op, env) -> None:
        ref = self._val(env, op.operands[0])
        dim = self._uniform_int(self._val(env, op.operands[1]),
                                "a dimension operand")
        if not isinstance(ref, _Store) or ref.shape is None \
                or not 0 <= dim < len(ref.shape):
            raise TrapError(f"memref.dim {dim} out of range")
        env[id(op.results[0])] = int(ref.shape[dim])

    def _position(self, env, target, indices):
        ref = self._val(env, target)
        if isinstance(ref, _Store):
            if ref.shape is None or len(indices) != len(ref.shape):
                raise JITExecutionError("rank-mismatched memref access")
            if not ref.shape:
                return ref, 0
            idx = [self._val(env, value) for value in indices]
            for index, extent in zip(idx, ref.shape):
                if _is_array(index):
                    if ((index < 0) | (index >= extent)).any():
                        raise TrapError("memref index out of bounds")
                elif not 0 <= index < extent:
                    raise TrapError("memref index out of bounds")
            position = idx[0]
            for index, extent in zip(idx[1:], ref.shape[1:]):
                position = position * int(extent) + index
            return ref, position
        if isinstance(ref, _VView):
            if len(indices) > 1:
                raise JITExecutionError(
                    "multi-index access through a view")
            offset = self._val(env, indices[0]) if indices else 0
            if ref.checked and not _is_array(offset) and offset == 0:
                return ref.store, ref.position
            position = ref.position + offset
            size = ref.store.size
            if _is_array(position):
                if ((position < 0) | (position >= size)).any():
                    raise TrapError("flat index out of bounds")
            elif not 0 <= position < size:
                raise TrapError("flat index out of bounds")
            return ref.store, position
        raise JITExecutionError(
            f"load/store through a {type(ref).__name__} value")

    def _gather(self, store: _Store, position):
        if store.per_lane:
            value = store.flat[self._lane_ix, position]
        elif _is_array(position):
            value = store.flat[position]
        else:
            raw = store.flat[int(position)]
            return float(raw) if store.is_float else int(raw)
        # Widen to binary64 / Python-int-equivalent int64 so arithmetic
        # matches the interpreter's load conversion exactly.
        return value.astype(_np.float64) if store.is_float \
            else value.astype(_np.int64)

    def _scatter(self, store: _Store, position, value) -> None:
        if store.per_lane:
            store.flat[self._lane_ix, position] = value
        elif _is_array(position):
            store.flat[position] = value
        elif _is_array(value):
            # A varying value at one uniform location: the interpreter's
            # item-at-a-time order makes the last lane win.
            store.flat[int(position)] = value[-1]
        else:
            store.flat[int(position)] = value

    # -- SYCL ids, items and accessors ---------------------------------------
    def _eval_constructor(self, op, env) -> None:
        cell = self._val(env, op.operands[0])
        if not isinstance(cell, _VCell):
            raise JITExecutionError(
                "sycl.constructor into a non-cell destination")
        comps: List[object] = []
        for operand in op.operands[1:]:
            value = self._val(env, operand)
            if not _scalar_int_type(operand.type):
                value = value.astype(_np.int64) if _is_array(value) \
                    else int(value)
            comps.append(value)
        cell.comps = comps

    def _item_check(self, env, op) -> None:
        if self._val(env, op.operands[0]) is not _ITEM:
            raise JITExecutionError(
                "work-item query on a non-item value")

    def _position_query(self, env, op, values, what: str,
                        require_local: bool) -> None:
        self._item_check(env, op)
        if require_local and self.mode == "basic":
            raise TrapError("work-group query on a kernel launched "
                            "without a local range")
        dim = self._dim_of(env, op)
        rank = len(values)
        if not 0 <= dim < rank:
            raise TrapError(
                f"dimension {dim} out of range for {what} of rank {rank}")
        env[id(op.results[0])] = values[dim]

    def _linear_query(self, env, op, values, ranges,
                      require_local: bool) -> None:
        self._item_check(env, op)
        if require_local and self.mode == "basic":
            raise TrapError("work-group query on a kernel launched "
                            "without a local range")
        position = values[0] if values else 0
        for d in range(1, len(values)):
            position = position * ranges[d] + values[d]
        env[id(op.results[0])] = position

    def _range_query(self, env, op, ranges, what: str,
                     require_local: bool) -> None:
        self._item_check(env, op)
        if require_local and self.mode == "basic":
            raise TrapError("work-group query on a kernel launched "
                            "without a local range")
        dim = self._dim_of(env, op)
        rank = len(ranges)
        if not 0 <= dim < rank:
            raise TrapError(
                f"dimension {dim} out of range for {what} of rank {rank}")
        env[id(op.results[0])] = int(ranges[dim])

    def _acc_of(self, env, value) -> _VAcc:
        rep = self._val(env, value)
        if not isinstance(rep, _VAcc):
            raise JITExecutionError(
                f"accessor operation on a {type(rep).__name__} value")
        return rep

    def _eval_subscript(self, op, env) -> None:
        acc = self._acc_of(env, op.operands[0])
        comps = self._components(env, op.operands[1])
        if len(comps) != acc.dims:
            raise TrapError(
                f"accessor expects {acc.dims} indices, got {len(comps)}")
        absolute = []
        for k, comp in enumerate(comps):
            index = comp + acc.offset[k]
            extent = acc.mem_range[k]
            if _is_array(index):
                if ((index < 0) | (index >= extent)).any():
                    raise TrapError(
                        "accessor index out of bounds for buffer of "
                        "shape " + repr(tuple(acc.mem_range)))
            elif not 0 <= index < extent:
                raise TrapError(
                    "accessor index out of bounds for buffer of shape "
                    + repr(tuple(acc.mem_range)))
            absolute.append(index)
        position = absolute[0]
        for k in range(1, acc.dims):
            position = position * int(acc.mem_range[k]) + absolute[k]
        env[id(op.results[0])] = _VView(acc.store, position, True)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

@register_executor("vector")
class VectorBackend(Backend):
    """Lockstep NumPy tier: whole work-groups as array operations."""

    NAME = "vector"

    def launch(self, engine, function, values, global_size,
               local_size=None, interpreter=None):
        from .interpreter import Interpreter, LaunchResult
        from .memory import ExecutionCounters
        from ..runtime.ndrange import NDRange, Range

        if _np is None:
            raise TierFallback("vector tier requires NumPy")
        reason = vector_legality(function)
        if reason is not None:
            raise TierFallback(reason)
        interp = interpreter or Interpreter(engine.module,
                                            max_steps=engine.max_steps)
        global_range = global_size if isinstance(global_size, Range) \
            else Range(global_size)
        local_range = group_range = None
        if local_size is not None:
            nd_range = NDRange(global_range, local_size if isinstance(
                local_size, Range) else Range(local_size))
            local_range = nd_range.local_range
            group_range = nd_range.group_range
        plan = interp._bind_arguments(function, values)
        counters = ExecutionCounters()
        runner = _Lockstep(function, counters, engine.max_steps)
        try:
            runner.launch(plan, tuple(global_range),
                          tuple(local_range) if local_range else None,
                          tuple(group_range) if group_range else None)
        except (TrapError, TierFallback):
            raise
        except OverflowError as error:
            raise TrapError(
                f"value exceeds the range of the storage element: "
                f"{error}") from None
        except InterpreterError:
            raise
        except Exception as error:  # noqa: BLE001 - degradation boundary
            raise JITExecutionError(
                f"vectorized execution of '{function.sym_name}' failed: "
                f"{error!r}") from error
        _merge_counters(interp.counters, counters)
        return LaunchResult(function.sym_name, global_range.size(),
                            counters)

    def call(self, engine, function, values, interpreter=None):
        raise TierFallback("vector tier executes kernels only")
