"""The tiered execution engine: one facade over every execution tier.

Before this module, execution was reachable through three inconsistent
entry points — ``Interpreter.launch`` (kernels, prepared arguments),
``execute_module`` (whole modules, synthesized arguments) and
``execute_function`` (one function, a resolved spec).  All three are now
thin deprecated shims over :class:`ExecutionEngine`, which adds the tier
abstraction the compile-to-Python JIT and the vectorized launcher hang
off:

* ``tier="interp"`` — the PR 5 tree-walking interpreter (the semantic
  reference; never declines an execution);
* ``tier="jit"``    — :mod:`repro.interp.jit` compiles the function once
  into generated Python source and runs that;
* ``tier="vector"`` — :mod:`repro.interp.vectorize` executes whole
  work-groups as NumPy array operations when
  :mod:`repro.analysis.uniformity` proves the kernel divergence-free;
* ``tier="auto"``   — try ``vector``, then ``jit``, then ``interp``.

Tiers are :class:`Backend` instances in a ``@register_executor``
registry mirroring ``@register_pass`` / ``@register_evaluator``; custom
tiers can be registered the same way.  A backend *declines* work by
raising :class:`TierFallback` — the engine records a remark and tries
the next tier, ending at the interpreter, which executes everything.
Unsupported constructs therefore never fail an execution the
interpreter would pass; they just run slower.

Import-order contract (PEP 562, see ``repro.interp.__init__``): this
module imports only :mod:`repro.interp.memory` eagerly.  The
interpreter, the differential helpers and the tier modules are imported
inside methods, so ``repro.interp.ExecutionEngine`` resolves without
pulling in any dialect module.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .memory import ExecutionCounters, InterpreterError

#: Tier order tried by ``tier="auto"`` (first registered match wins).
AUTO_TIER_ORDER = ("vector", "jit", "interp")


class ExecutorRegistrationError(Exception):
    """Raised when two executors claim the same tier name."""


class TierFallback(Exception):
    """A backend declined an execution *before running any of it*.

    The engine records the reason as a remark and falls through to the
    next tier of the plan.  Raising this after side effects have been
    performed is a backend bug — use
    :class:`repro.interp.jit.JITExecutionError` for mid-run failures,
    which only the re-materializing ``execute`` path may retry.
    """


# ---------------------------------------------------------------------------
# The executor registry (mirrors repro.interp.registry for evaluators)
# ---------------------------------------------------------------------------

_EXECUTORS: Dict[str, "Backend"] = {}
_BUILTINS_LOADED = False


class Backend:
    """One execution tier.

    Subclasses implement :meth:`launch` (kernels) and :meth:`call`
    (plain functions) and raise :class:`TierFallback` for work they do
    not support.  ``values`` are the caller-provided argument values in
    declaration order (item arguments excluded): runtime
    ``Accessor``/``Buffer``/``LocalAccessor`` objects or scalars for
    launches, prepared ``MemRefStorage``/``AccessorBinding`` values for
    calls — exactly what the corresponding ``Interpreter`` entry point
    accepted.
    """

    NAME = ""

    def launch(self, engine: "ExecutionEngine", function, values,
               global_size, local_size=None, interpreter=None):
        """Execute a kernel launch; returns a ``LaunchResult``."""
        raise TierFallback(
            f"tier '{self.NAME}' does not implement kernel launches")

    def call(self, engine: "ExecutionEngine", function, values,
             interpreter=None) -> Tuple[List[object], ExecutionCounters]:
        """Execute a plain function; returns ``(results, counters)``."""
        raise TierFallback(
            f"tier '{self.NAME}' does not implement plain calls")

    def describe(self) -> Dict[str, object]:
        return {"name": self.NAME, "doc": (self.__doc__ or "").strip()}


def register_executor(name: str, backend: Optional[Backend] = None):
    """Register an execution tier under ``name``.

    Decorator-or-call, mirroring ``register_evaluator``::

        @register_executor("jit")
        class JITBackend(Backend): ...

        register_executor("custom", CustomBackend())
    """
    def _install(target):
        instance = target() if isinstance(target, type) else target
        if name in _EXECUTORS:
            raise ExecutorRegistrationError(
                f"an executor is already registered for tier '{name}'")
        if not instance.NAME:
            instance.NAME = name
        _EXECUTORS[name] = instance
        return target

    if backend is not None:
        return _install(backend)
    return _install


def _ensure_builtin_executors() -> None:
    """Import the built-in tier modules (registering their backends)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from . import jit, vectorize  # noqa: F401  (register on import)


def registered_executors() -> Tuple[str, ...]:
    """Sorted names of every registered execution tier."""
    _ensure_builtin_executors()
    return tuple(sorted(_EXECUTORS))


def executor_for(name: str) -> Backend:
    _ensure_builtin_executors()
    backend = _EXECUTORS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown execution tier '{name}' (registered: "
            f"{', '.join(registered_executors())})")
    return backend


# ---------------------------------------------------------------------------
# Deprecation shims support
# ---------------------------------------------------------------------------

_DEPRECATION_SEEN: set = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit one ``DeprecationWarning`` per entry point per process."""
    if name in _DEPRECATION_SEEN:
        return
    _DEPRECATION_SEEN.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning, stacklevel=3)


def _reset_deprecation_warnings() -> None:
    """Test hook: make every shim warn again."""
    _DEPRECATION_SEEN.clear()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class ExecutionEngine:
    """Execute functions and kernels of one module through a tier plan.

    ``tier`` is ``"auto"`` (vector, then jit, then interp) or any
    registered tier name; explicit non-interpreter tiers still degrade
    to the interpreter when they decline, with the reason recorded in
    :attr:`remarks`.  ``executable_cache`` optionally shares one
    :class:`repro.interp.jit.ExecutableCache` (e.g. the daemon's) across
    engines.
    """

    def __init__(self, module, tier: str = "auto",
                 max_steps: int = 10_000_000,
                 executable_cache=None):
        _ensure_builtin_executors()
        if tier != "auto" and tier not in _EXECUTORS:
            raise ValueError(
                f"unknown execution tier '{tier}' (available: auto, "
                f"{', '.join(registered_executors())})")
        self.module = module
        self.tier = tier
        self.max_steps = max_steps
        self.executable_cache = executable_cache
        #: Tier-selection decisions (fallbacks, degradations) recorded
        #: in execution order.
        self.remarks: List[str] = []

    # -- plan ---------------------------------------------------------------
    def tier_plan(self) -> Tuple[str, ...]:
        """The tiers tried, in order, for this engine's ``tier``."""
        if self.tier == "auto":
            return tuple(t for t in AUTO_TIER_ORDER if t in _EXECUTORS)
        if self.tier == "interp":
            return ("interp",)
        return (self.tier, "interp")

    def _remark(self, text: str) -> None:
        self.remarks.append(text)

    # -- lookup -------------------------------------------------------------
    def lookup_function(self, function):
        from ..dialects.func import FuncOp

        if isinstance(function, FuncOp):
            return function
        from .interpreter import Interpreter

        return Interpreter(self.module).lookup_function(function)

    # -- low-level entry points (subsume Interpreter.launch / .call) --------
    def launch(self, kernel, args: Sequence[object],
               global_size, local_size=None):
        """Execute ``kernel`` once per work item (tiered).

        Accepts exactly what ``Interpreter.launch`` accepted.  Only
        *pre-execution* failures fall through to the next tier here —
        a tier that failed mid-run on caller-owned buffers raises
        instead of silently re-running on partially written data (use
        :meth:`execute`/:meth:`run`, which re-materialize, for the full
        degradation ladder).
        """
        function = self.lookup_function(kernel)
        last_error: Optional[Exception] = None
        for name in self.tier_plan():
            backend = executor_for(name)
            try:
                return backend.launch(self, function, list(args),
                                      global_size, local_size)
            except TierFallback as fall:
                self._remark(
                    f"tier '{name}' fell back for '{function.sym_name}': "
                    f"{fall}")
                last_error = fall
        raise InterpreterError(
            f"no execution tier accepted kernel '{function.sym_name}': "
            f"{last_error}")

    def call(self, function, args: Sequence[object] = ()) -> List[object]:
        """Execute a plain function with prepared argument values."""
        function = self.lookup_function(function)
        last_error: Optional[Exception] = None
        for name in self.tier_plan():
            backend = executor_for(name)
            try:
                results, _ = backend.call(self, function, list(args))
                return results
            except TierFallback as fall:
                self._remark(
                    f"tier '{name}' fell back for '{function.sym_name}': "
                    f"{fall}")
                last_error = fall
        raise InterpreterError(
            f"no execution tier accepted function '{function.sym_name}': "
            f"{last_error}")

    # -- spec-driven execution (subsumes execute_function/execute_module) ---
    def run(self, function, spec=None):
        """Synthesize inputs for ``function`` and execute it.

        ``spec`` is an optional
        :class:`~repro.interp.differential.ExecutionSpec`; returns a
        ``FunctionExecution`` whose ``tier`` field names the tier that
        actually ran.
        """
        from .differential import synthesize_spec

        function = self.lookup_function(function)
        resolved = synthesize_spec(function, spec)
        return self.execute(function, resolved)

    def execute(self, function, resolved):
        """Execute ``function`` on a resolved input plan (tiered).

        Inputs are materialized *fresh per tier attempt*, so a tier
        that failed after partial side effects (an injected ``jit.exec``
        fault, a backend bug) degrades safely: the next tier starts
        from pristine data.
        """
        from .differential import (
            FunctionExecution,
            _materialize,
            _snapshot,
        )
        from .interpreter import Interpreter
        from .jit import JITExecutionError
        from .memory import AccessorBinding
        from ..runtime.accessor import Accessor

        function = self.lookup_function(function)
        last_error: Optional[Exception] = None
        for name in self.tier_plan():
            backend = executor_for(name)
            interpreter = Interpreter(self.module, max_steps=self.max_steps)
            # Materialize every memref.global up front so executions
            # snapshot one key set regardless of which accesses remain.
            interpreter.materialize_globals()
            values: List[object] = []
            handles: List[object] = []
            for plan in resolved.arg_plans:
                if plan[0] == "item":
                    continue
                value, handle = _materialize(plan)
                if resolved.kind == "function" and isinstance(value, Accessor):
                    # Call paths take prepared values; only the launch
                    # path wraps runtime Accessors itself.
                    value = AccessorBinding(value, plan[2])
                values.append(value)
                handles.append(handle)
            try:
                if resolved.kind == "kernel":
                    launch = backend.launch(
                        self, function, values, resolved.global_size,
                        resolved.local_size, interpreter=interpreter)
                    results: List[object] = []
                    counters = launch.counters
                else:
                    results, counters = backend.call(
                        self, function, values, interpreter=interpreter)
            except TierFallback as fall:
                self._remark(
                    f"tier '{name}' fell back for '{function.sym_name}': "
                    f"{fall}")
                last_error = fall
                continue
            except JITExecutionError as err:
                # The generated executable failed mid-run; inputs are
                # re-materialized, so degrading to the next tier is safe.
                self._remark(
                    f"tier '{name}' degraded for '{function.sym_name}': "
                    f"{err}")
                last_error = err
                continue
            memory: Dict[str, List[object]] = {}
            handle_index = 0
            for plan, arg_name in zip(resolved.arg_plans,
                                      resolved.arg_names):
                if plan[0] == "item":
                    continue
                handle = handles[handle_index]
                handle_index += 1
                if handle is not None:
                    memory[arg_name] = _snapshot(handle)
            for global_name, storage in sorted(
                    interpreter.global_snapshots().items()):
                memory[f"global:{global_name}"] = storage.snapshot()
            return FunctionExecution(
                name=function.sym_name, kind=resolved.kind,
                results=list(results), memory=memory,
                counters=counters.as_dict(), tier=name)
        raise InterpreterError(
            f"no execution tier accepted '{function.sym_name}': "
            f"{last_error}")

    def execute_module(self, specs=None, ):
        """Execute every executable function; ``(executions, skipped)``."""
        from .differential import (
            _executable_functions,
            synthesize_spec,
        )
        from .memory import TrapError

        specs = specs or {}
        executions = {}
        skipped: Dict[str, str] = {}
        for function in _executable_functions(self.module):
            name = function.sym_name
            try:
                resolved = synthesize_spec(function, specs.get(name))
                executions[name] = self.execute(function, resolved)
            except (InterpreterError, TrapError, ValueError) as error:
                skipped[name] = str(error)
        return executions, skipped

    # -- introspection ------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "plan": list(self.tier_plan()),
            "tiers": list(registered_executors()),
            "remarks": list(self.remarks),
        }

    def __repr__(self) -> str:
        return f"<ExecutionEngine tier={self.tier!r}>"


# ---------------------------------------------------------------------------
# The interpreter tier: the semantic reference, never declines.
# ---------------------------------------------------------------------------

@register_executor("interp")
class InterpreterBackend(Backend):
    """Tree-walking reference interpreter (always available)."""

    NAME = "interp"

    def launch(self, engine, function, values, global_size,
               local_size=None, interpreter=None):
        from .interpreter import Interpreter

        interp = interpreter or Interpreter(engine.module,
                                            max_steps=engine.max_steps)
        return interp._launch(function, values, global_size, local_size)

    def call(self, engine, function, values, interpreter=None):
        from .interpreter import Interpreter

        interp = interpreter or Interpreter(engine.module,
                                            max_steps=engine.max_steps)
        results = interp.call(function, values)
        return results, interp.counters
