"""IR interpreter & differential-execution subsystem.

Layers:

* :mod:`repro.interp.registry` — the per-dialect evaluator registry
  (``@register_evaluator("arith.addi")``, mirroring ``@register_pass``);
* :mod:`repro.interp.memory` — the memory model (``MemRefStorage``,
  accessor bindings wired to :mod:`repro.runtime`, control signals);
* :mod:`repro.interp.interpreter` — the region-based interpreter with
  barrier-aware ND-range kernel launches;
* :mod:`repro.interp.engine` — the tiered :class:`ExecutionEngine`
  facade and the ``@register_executor`` backend registry;
* :mod:`repro.interp.jit` — the compile-to-Python JIT tier
  (``tier="jit"``) with its fingerprint-keyed executable cache;
* :mod:`repro.interp.vectorize` — the lockstep NumPy vector tier
  (``tier="vector"``) for divergence-free kernels;
* :mod:`repro.interp.differential` — the pre- vs post-pipeline
  differential execution harness (``optimized != miscompiled``).

The heavy modules are imported lazily (PEP 562): dialect modules import
``repro.interp.registry``/``repro.interp.memory`` at definition time to
register their evaluators, and the interpreter (and the tiers built on
it) in turn imports the dialects — laziness here is what keeps that
dependency loop acyclic at import time.  ``repro.interp.ExecutionEngine``
therefore resolves without eagerly importing any dialect module.
"""

from .memory import (
    BARRIER,
    AccessorBinding,
    BlockResult,
    ExecutionCounters,
    GroupContext,
    InterpreterError,
    MemRefStorage,
    MemRefView,
    TrapError,
    WorkItemBinding,
    byte_size_of,
)
from .registry import (
    EvaluatorRegistrationError,
    lookup_evaluator,
    register_evaluator,
    registered_evaluators,
)

#: Lazily resolved attributes -> (module, attribute).
_LAZY = {
    "EvalContext": ("interpreter", "EvalContext"),
    "Interpreter": ("interpreter", "Interpreter"),
    "LaunchResult": ("interpreter", "LaunchResult"),
    "DifferentialError": ("differential", "DifferentialError"),
    "DifferentialReport": ("differential", "DifferentialReport"),
    "ExecutionSpec": ("differential", "ExecutionSpec"),
    "FunctionExecution": ("differential", "FunctionExecution"),
    "execute_function": ("differential", "execute_function"),
    "execute_module": ("differential", "execute_module"),
    "run_differential": ("differential", "run_differential"),
    "synthesize_spec": ("differential", "synthesize_spec"),
    "Backend": ("engine", "Backend"),
    "ExecutionEngine": ("engine", "ExecutionEngine"),
    "ExecutorRegistrationError": ("engine", "ExecutorRegistrationError"),
    "TierFallback": ("engine", "TierFallback"),
    "executor_for": ("engine", "executor_for"),
    "register_executor": ("engine", "register_executor"),
    "registered_executors": ("engine", "registered_executors"),
    "CompiledExecutable": ("jit", "CompiledExecutable"),
    "ExecutableCache": ("jit", "ExecutableCache"),
    "JITBackend": ("jit", "JITBackend"),
    "JITExecutionError": ("jit", "JITExecutionError"),
    "JITUnsupportedError": ("jit", "JITUnsupportedError"),
    "compile_executable": ("jit", "compile_executable"),
    "VectorBackend": ("vectorize", "VectorBackend"),
    "vector_legality": ("vectorize", "vector_legality"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.interp' has no attribute {name!r}")
    module_name, attribute = target
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


__all__ = [
    "BARRIER", "AccessorBinding", "BlockResult", "ExecutionCounters",
    "GroupContext", "InterpreterError", "MemRefStorage", "MemRefView",
    "TrapError", "WorkItemBinding", "byte_size_of",
    "EvaluatorRegistrationError", "lookup_evaluator", "register_evaluator",
    "registered_evaluators",
    "EvalContext", "Interpreter", "LaunchResult",
    "DifferentialError", "DifferentialReport", "ExecutionSpec",
    "FunctionExecution", "execute_function", "execute_module",
    "run_differential", "synthesize_spec",
    "Backend", "ExecutionEngine", "ExecutorRegistrationError",
    "TierFallback", "executor_for", "register_executor",
    "registered_executors",
    "CompiledExecutable", "ExecutableCache", "JITBackend",
    "JITExecutionError", "JITUnsupportedError", "compile_executable",
    "VectorBackend", "vector_legality",
]
